package relalg

import (
	"context"
	"fmt"
	"strings"
	"unicode"

	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// This file routes the algebra's reachability atoms through the
// product-graph kernel (this PR's tentpole for the relalg tier): REACH(e)
// AS (x, y) is the binary relation {(u, v) | some e-path u ⇝ v}, computed
// by eval.PairsCtx on the kernel — so the atom inherits budgets, amortized
// cancellation, the cost-based planner, and the sharded sweep — while the
// set operators (JOIN, UNION, DIFF, projection, renaming) stay tier-local,
// metered per tuple through the same Ticker discipline.

// Query is a relational-algebra query over reachability atoms.
type Query interface {
	fmt.Stringer
	isQuery()
}

// ReachQ is the kernel-backed atom REACH(e) AS (x, y): all node pairs
// (u, v) connected by a path matching the RPQ e, as a binary relation with
// attributes X and Y.
type ReachQ struct {
	Expr rpq.Expr
	X, Y string
}

// JoinQ is the natural join L ⋈ R.
type JoinQ struct{ Left, Right Query }

// UnionQ is L ∪ R (schemas must match).
type UnionQ struct{ Left, Right Query }

// DiffQ is L − R (schemas must match).
type DiffQ struct{ Left, Right Query }

// ProjectQ is π_Attrs(Sub).
type ProjectQ struct {
	Sub   Query
	Attrs []string
}

// RenameQ is ρ_{From→To}(Sub).
type RenameQ struct {
	Sub      Query
	From, To string
}

func (ReachQ) isQuery()   {}
func (JoinQ) isQuery()    {}
func (UnionQ) isQuery()   {}
func (DiffQ) isQuery()    {}
func (ProjectQ) isQuery() {}
func (RenameQ) isQuery()  {}

func (q ReachQ) String() string {
	return fmt.Sprintf("REACH(%s) AS (%s, %s)", q.Expr, q.X, q.Y)
}
func (q JoinQ) String() string  { return "(" + q.Left.String() + " JOIN " + q.Right.String() + ")" }
func (q UnionQ) String() string { return "(" + q.Left.String() + " UNION " + q.Right.String() + ")" }
func (q DiffQ) String() string  { return "(" + q.Left.String() + " DIFF " + q.Right.String() + ")" }
func (q ProjectQ) String() string {
	return "PROJECT(" + q.Sub.String() + "; " + strings.Join(q.Attrs, ", ") + ")"
}
func (q RenameQ) String() string {
	return "RENAME(" + q.Sub.String() + "; " + q.From + " -> " + q.To + ")"
}

// EvalQueryCtx evaluates the query under a context and budget. Every
// reachability atom runs on the product-graph kernel with opts applied
// (Plan, Parallelism, MaxLen, Budget/Meter); set-operator work is charged
// per tuple to the states budget, and each final tuple to the rows budget.
// Errors follow the standard taxonomy and return no partial results.
func EvalQueryCtx(ctx context.Context, g *graph.Graph, q Query, opts eval.Options) (*Relation, error) {
	m := opts.Meter
	if m == nil {
		m = pg.NewMeter(ctx, opts.Budget)
		opts.Meter = m
	}
	tick := pg.NewTicker(m, nil)
	rel, err := evalQuery(ctx, g, q, opts, &tick)
	if err != nil {
		return nil, err
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	if err := m.AddRows(int64(rel.Len())); err != nil {
		return nil, err
	}
	return rel, nil
}

func evalQuery(ctx context.Context, g *graph.Graph, q Query, opts eval.Options, t *pg.Ticker) (*Relation, error) {
	switch n := q.(type) {
	case ReachQ:
		pairs, err := eval.PairsCtx(ctx, g, n.Expr, opts)
		if err != nil {
			return nil, err
		}
		rel, err := NewRelation(n.X, n.Y)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			if err := t.Step(); err != nil {
				return nil, err
			}
			if err := rel.Add(NodeCell(p[0]), NodeCell(p[1])); err != nil {
				return nil, err
			}
		}
		return rel, nil
	case JoinQ:
		l, r, err := evalPair(ctx, g, n.Left, n.Right, opts, t)
		if err != nil {
			return nil, err
		}
		out, err := l.Join(r)
		if err != nil {
			return nil, err
		}
		return out, tickPer(t, out.Len())
	case UnionQ:
		l, r, err := evalPair(ctx, g, n.Left, n.Right, opts, t)
		if err != nil {
			return nil, err
		}
		out, err := l.Union(r)
		if err != nil {
			return nil, err
		}
		return out, tickPer(t, out.Len())
	case DiffQ:
		l, r, err := evalPair(ctx, g, n.Left, n.Right, opts, t)
		if err != nil {
			return nil, err
		}
		out, err := l.Diff(r)
		if err != nil {
			return nil, err
		}
		return out, tickPer(t, out.Len())
	case ProjectQ:
		sub, err := evalQuery(ctx, g, n.Sub, opts, t)
		if err != nil {
			return nil, err
		}
		out, err := sub.Project(n.Attrs...)
		if err != nil {
			return nil, err
		}
		return out, tickPer(t, out.Len())
	case RenameQ:
		sub, err := evalQuery(ctx, g, n.Sub, opts, t)
		if err != nil {
			return nil, err
		}
		out, err := sub.Rename(n.From, n.To)
		if err != nil {
			return nil, err
		}
		return out, tickPer(t, out.Len())
	default:
		return nil, fmt.Errorf("relalg: unknown query %T", q)
	}
}

func evalPair(ctx context.Context, g *graph.Graph, left, right Query, opts eval.Options, t *pg.Ticker) (*Relation, *Relation, error) {
	l, err := evalQuery(ctx, g, left, opts, t)
	if err != nil {
		return nil, nil, err
	}
	r, err := evalQuery(ctx, g, right, opts, t)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func tickPer(t *pg.Ticker, n int) error {
	for i := 0; i < n; i++ {
		if err := t.Step(); err != nil {
			return err
		}
	}
	return nil
}

// ParseQuery parses the textual algebra syntax:
//
//	query := term (('UNION' | 'DIFF') term)*        left-associative
//	term  := atom ('JOIN' atom)*                    left-associative
//	atom  := 'REACH' '(' rpq ')' 'AS' '(' x ',' y ')'
//	       | 'PROJECT' '(' query ';' x (',' x)* ')'
//	       | 'RENAME' '(' query ';' x '->' y ')'
//	       | '(' query ')'
//
// The rpq inside REACH uses the rpq package syntax (labels, '|', '*', '_',
// …). Keywords are case-sensitive. Example:
//
//	REACH(Transfer*) AS (x, y) JOIN REACH(Owns) AS (y, z)
func ParseQuery(input string) (Query, error) {
	p := &queryParser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos < len(p.src) {
		return nil, p.errf("unexpected %q", p.src[p.pos:])
	}
	return q, nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(input string) Query {
	q, err := ParseQuery(input)
	if err != nil {
		panic(err)
	}
	return q
}

type queryParser struct {
	src string
	pos int
}

func (p *queryParser) errf(format string, args ...any) error {
	return fmt.Errorf("relalg: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *queryParser) ws() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// keyword consumes kw if it appears next as a full word.
func (p *queryParser) keyword(kw string) bool {
	p.ws()
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	rest := p.src[p.pos+len(kw):]
	if rest != "" && (isIdentByte(rest[0])) {
		return false
	}
	p.pos += len(kw)
	return true
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *queryParser) expect(c byte) error {
	p.ws()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *queryParser) ident() (string, error) {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *queryParser) parseQuery() (Query, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.keyword("UNION"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = UnionQ{Left: left, Right: right}
		case p.keyword("DIFF"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = DiffQ{Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *queryParser) parseTerm() (Query, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.keyword("JOIN") {
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		left = JoinQ{Left: left, Right: right}
	}
	return left, nil
}

func (p *queryParser) parseAtom() (Query, error) {
	switch {
	case p.keyword("REACH"):
		if err := p.expect('('); err != nil {
			return nil, err
		}
		src, err := p.balanced()
		if err != nil {
			return nil, err
		}
		e, err := rpq.Parse(src)
		if err != nil {
			return nil, p.errf("in REACH: %v", err)
		}
		if !p.keyword("AS") {
			return nil, p.errf("expected AS after REACH(...)")
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		x, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		y, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if x == y {
			return nil, p.errf("REACH attributes must be distinct, got (%s, %s)", x, y)
		}
		return ReachQ{Expr: e, X: x, Y: y}, nil
	case p.keyword("PROJECT"):
		if err := p.expect('('); err != nil {
			return nil, err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
		var attrs []string
		for {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return ProjectQ{Sub: sub, Attrs: attrs}, nil
	case p.keyword("RENAME"):
		if err := p.expect('('); err != nil {
			return nil, err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
		from, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !strings.HasPrefix(p.src[p.pos:], "->") {
			return nil, p.errf("expected -> in RENAME")
		}
		p.pos += 2
		to, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return RenameQ{Sub: sub, From: from, To: to}, nil
	default:
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			p.pos++
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expect(')'); err != nil {
				return nil, err
			}
			return sub, nil
		}
		return nil, p.errf("expected REACH, PROJECT, RENAME, or (")
	}
}

// balanced consumes up to (and including) the ')' matching an already-
// consumed '(' and returns the text between, honoring nested parens and
// single-quoted rpq labels.
func (p *queryParser) balanced() (string, error) {
	start := p.pos
	depth := 1
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\'':
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != '\'' {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return "", p.errf("unterminated quoted label")
			}
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				out := p.src[start:p.pos]
				p.pos++
				return out, nil
			}
		}
		p.pos++
	}
	return "", p.errf("unbalanced parentheses")
}
