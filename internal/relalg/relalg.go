// Package relalg implements first-normal-form relations over mixed
// node/edge/value attributes, with the relational-algebra operators that
// CoreGQL applies to pattern outputs (Section 4.1.3): selection, projection,
// natural join, union, difference, and renaming, all under set semantics.
//
// Cells are atomic: a graph node, a graph edge, or a property value — never
// a list or a null (the first-normal-form requirement CoreGQL builds its
// free-variable discipline around, Section 4.1).
package relalg

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/graph"
)

// CellKind discriminates relation cell contents.
type CellKind uint8

// The cell kinds.
const (
	CellNode CellKind = iota
	CellEdge
	CellValue
)

// Cell is one atomic entry of a tuple.
type Cell struct {
	Kind  CellKind
	Index int         // node or edge index, for CellNode/CellEdge
	Value graph.Value // for CellValue
}

// NodeCell returns a cell holding node index i.
func NodeCell(i int) Cell { return Cell{Kind: CellNode, Index: i} }

// EdgeCell returns a cell holding edge index i.
func EdgeCell(i int) Cell { return Cell{Kind: CellEdge, Index: i} }

// ValueCell returns a cell holding a property value.
func ValueCell(v graph.Value) Cell { return Cell{Kind: CellValue, Value: v} }

// Equal reports cell equality.
func (c Cell) Equal(d Cell) bool {
	if c.Kind != d.Kind {
		return false
	}
	if c.Kind == CellValue {
		return c.Value.Equal(d.Value)
	}
	return c.Index == d.Index
}

// key renders a canonical deduplication key.
func (c Cell) key() string {
	switch c.Kind {
	case CellNode:
		return fmt.Sprintf("N%d", c.Index)
	case CellEdge:
		return fmt.Sprintf("E%d", c.Index)
	default:
		return fmt.Sprintf("V%d:%s", c.Value.Kind(), c.Value.String())
	}
}

// Format renders the cell with external IDs from g (nil g falls back to
// indices).
func (c Cell) Format(g *graph.Graph) string {
	switch c.Kind {
	case CellNode:
		if g != nil {
			return string(g.Node(c.Index).ID)
		}
		return fmt.Sprintf("node#%d", c.Index)
	case CellEdge:
		if g != nil {
			return string(g.Edge(c.Index).ID)
		}
		return fmt.Sprintf("edge#%d", c.Index)
	default:
		return c.Value.String()
	}
}

// Relation is a set of tuples over a fixed attribute list. Tuples are
// deduplicated on insertion (set semantics).
type Relation struct {
	attrs  []string
	index  map[string]int // attribute -> column
	tuples [][]Cell
	seen   map[string]struct{}
}

// NewRelation creates an empty relation with the given attributes.
// Attribute names must be distinct.
func NewRelation(attrs ...string) (*Relation, error) {
	r := &Relation{
		attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
		seen:  make(map[string]struct{}),
	}
	for i, a := range attrs {
		if _, dup := r.index[a]; dup {
			return nil, fmt.Errorf("relalg: duplicate attribute %q", a)
		}
		r.index[a] = i
	}
	return r, nil
}

// MustNewRelation is NewRelation that panics on error.
func MustNewRelation(attrs ...string) *Relation {
	r, err := NewRelation(attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Attrs returns the attribute list.
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns tuple i.
func (r *Relation) Tuple(i int) []Cell { return r.tuples[i] }

// Col resolves an attribute to its column index.
func (r *Relation) Col(attr string) (int, bool) {
	i, ok := r.index[attr]
	return i, ok
}

func tupleKey(t []Cell) string {
	var b strings.Builder
	for _, c := range t {
		b.WriteString(c.key())
		b.WriteByte('|')
	}
	return b.String()
}

// Add inserts a tuple (deduplicated). The arity must match.
func (r *Relation) Add(t ...Cell) error {
	if len(t) != len(r.attrs) {
		return fmt.Errorf("relalg: tuple arity %d does not match relation arity %d", len(t), len(r.attrs))
	}
	k := tupleKey(t)
	if _, dup := r.seen[k]; dup {
		return nil
	}
	r.seen[k] = struct{}{}
	r.tuples = append(r.tuples, append([]Cell(nil), t...))
	return nil
}

// MustAdd is Add that panics on error.
func (r *Relation) MustAdd(t ...Cell) {
	if err := r.Add(t...); err != nil {
		panic(err)
	}
}

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t ...Cell) bool {
	_, ok := r.seen[tupleKey(t)]
	return ok
}

// Select returns σ_pred(r).
func (r *Relation) Select(pred func(t []Cell) bool) *Relation {
	out := MustNewRelation(r.attrs...)
	for _, t := range r.tuples {
		if pred(t) {
			out.MustAdd(t...)
		}
	}
	return out
}

// Project returns π_attrs(r); duplicates collapse (set semantics).
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		c, ok := r.index[a]
		if !ok {
			return nil, fmt.Errorf("relalg: projection on unknown attribute %q", a)
		}
		cols[i] = c
	}
	out, err := NewRelation(attrs...)
	if err != nil {
		return nil, err
	}
	for _, t := range r.tuples {
		proj := make([]Cell, len(cols))
		for i, c := range cols {
			proj[i] = t[c]
		}
		out.MustAdd(proj...)
	}
	return out, nil
}

// Rename returns ρ(r) with attribute from renamed to to.
func (r *Relation) Rename(from, to string) (*Relation, error) {
	if _, ok := r.index[from]; !ok {
		return nil, fmt.Errorf("relalg: rename of unknown attribute %q", from)
	}
	attrs := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		if a == from {
			attrs[i] = to
		} else {
			attrs[i] = a
		}
	}
	out, err := NewRelation(attrs...)
	if err != nil {
		return nil, err
	}
	for _, t := range r.tuples {
		out.MustAdd(t...)
	}
	return out, nil
}

// Union returns r ∪ s; attribute lists must be identical.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	out := MustNewRelation(r.attrs...)
	for _, t := range r.tuples {
		out.MustAdd(t...)
	}
	for _, t := range s.tuples {
		out.MustAdd(t...)
	}
	return out, nil
}

// Diff returns r − s; attribute lists must be identical.
func (r *Relation) Diff(s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	out := MustNewRelation(r.attrs...)
	for _, t := range r.tuples {
		if !s.Contains(t...) {
			out.MustAdd(t...)
		}
	}
	return out, nil
}

func sameSchema(r, s *Relation) error {
	if len(r.attrs) != len(s.attrs) {
		return fmt.Errorf("relalg: schema mismatch: %v vs %v", r.attrs, s.attrs)
	}
	for i := range r.attrs {
		if r.attrs[i] != s.attrs[i] {
			return fmt.Errorf("relalg: schema mismatch: %v vs %v", r.attrs, s.attrs)
		}
	}
	return nil
}

// Join returns the natural join r ⋈ s: tuples agreeing on all shared
// attributes, with the output schema r.attrs ++ (s.attrs − shared).
func (r *Relation) Join(s *Relation) (*Relation, error) {
	var shared [][2]int // (column in r, column in s)
	var extraCols []int
	var outAttrs []string
	outAttrs = append(outAttrs, r.attrs...)
	for j, a := range s.attrs {
		if i, ok := r.index[a]; ok {
			shared = append(shared, [2]int{i, j})
		} else {
			extraCols = append(extraCols, j)
			outAttrs = append(outAttrs, a)
		}
	}
	out, err := NewRelation(outAttrs...)
	if err != nil {
		return nil, err
	}
	// Hash join on the shared columns.
	type key = string
	buckets := make(map[key][]int)
	mk := func(t []Cell, cols []int) string {
		var b strings.Builder
		for _, c := range cols {
			b.WriteString(t[c].key())
			b.WriteByte('|')
		}
		return b.String()
	}
	rCols := make([]int, len(shared))
	sCols := make([]int, len(shared))
	for i, p := range shared {
		rCols[i], sCols[i] = p[0], p[1]
	}
	for i, t := range s.tuples {
		buckets[mk(t, sCols)] = append(buckets[mk(t, sCols)], i)
	}
	for _, t := range r.tuples {
		for _, si := range buckets[mk(t, rCols)] {
			st := s.tuples[si]
			outT := make([]Cell, 0, len(outAttrs))
			outT = append(outT, t...)
			for _, c := range extraCols {
				outT = append(outT, st[c])
			}
			out.MustAdd(outT...)
		}
	}
	return out, nil
}

// Product returns the Cartesian product when no attributes are shared
// (a special case of Join, provided for clarity).
func (r *Relation) Product(s *Relation) (*Relation, error) {
	for _, a := range s.attrs {
		if _, clash := r.index[a]; clash {
			return nil, fmt.Errorf("relalg: product with shared attribute %q (use Join)", a)
		}
	}
	return r.Join(s)
}

// Sorted returns the tuples in a canonical order (by key), for deterministic
// output in tests and CLI rendering.
func (r *Relation) Sorted() [][]Cell {
	out := append([][]Cell(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool { return tupleKey(out[i]) < tupleKey(out[j]) })
	return out
}

// Format renders the relation as an aligned text table using external IDs
// from g (g may be nil).
func (r *Relation) Format(g *graph.Graph) string {
	var b strings.Builder
	widths := make([]int, len(r.attrs))
	rows := make([][]string, 0, len(r.tuples)+1)
	header := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		header[i] = a
		widths[i] = len(a)
	}
	rows = append(rows, header)
	for _, t := range r.Sorted() {
		row := make([]string, len(t))
		for i, c := range t {
			row[i] = c.Format(g)
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows = append(rows, row)
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for _, w := range widths {
				b.WriteString(strings.Repeat("-", w) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
