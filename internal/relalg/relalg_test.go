package relalg

import (
	"strings"
	"testing"

	"graphquery/internal/graph"
)

func rel(t *testing.T, attrs []string, tuples ...[]Cell) *Relation {
	t.Helper()
	r, err := NewRelation(attrs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := r.Add(tp...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestNewRelationErrors(t *testing.T) {
	if _, err := NewRelation("x", "x"); err == nil {
		t.Error("duplicate attributes should fail")
	}
	r := MustNewRelation("x")
	if err := r.Add(NodeCell(0), NodeCell(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestSetSemantics(t *testing.T) {
	r := rel(t, []string{"x"},
		[]Cell{NodeCell(1)},
		[]Cell{NodeCell(1)}, // duplicate
		[]Cell{NodeCell(2)},
	)
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 (set semantics)", r.Len())
	}
	if !r.Contains(NodeCell(1)) || r.Contains(NodeCell(9)) {
		t.Error("Contains wrong")
	}
}

func TestCellEquality(t *testing.T) {
	if NodeCell(1).Equal(EdgeCell(1)) {
		t.Error("node and edge cells differ even with the same index")
	}
	if !ValueCell(graph.Int(2)).Equal(ValueCell(graph.Float(2))) {
		t.Error("numeric value cells compare numerically")
	}
	if ValueCell(graph.Str("a")).Equal(ValueCell(graph.Str("b"))) {
		t.Error("different strings must differ")
	}
}

func TestSelectProject(t *testing.T) {
	r := rel(t, []string{"x", "v"},
		[]Cell{NodeCell(1), ValueCell(graph.Int(5))},
		[]Cell{NodeCell(2), ValueCell(graph.Int(9))},
	)
	sel := r.Select(func(tp []Cell) bool { return tp[1].Value.Compare(graph.Int(6)) > 0 })
	if sel.Len() != 1 || !sel.Contains(NodeCell(2), ValueCell(graph.Int(9))) {
		t.Errorf("Select wrong: %d tuples", sel.Len())
	}
	proj, err := r.Project("v")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 2 || proj.Arity() != 1 {
		t.Errorf("Project wrong: %d tuples, arity %d", proj.Len(), proj.Arity())
	}
	if _, err := r.Project("nope"); err == nil {
		t.Error("projection on unknown attribute should fail")
	}
	// Projection collapses duplicates.
	r2 := rel(t, []string{"x", "v"},
		[]Cell{NodeCell(1), ValueCell(graph.Int(5))},
		[]Cell{NodeCell(2), ValueCell(graph.Int(5))},
	)
	proj2, _ := r2.Project("v")
	if proj2.Len() != 1 {
		t.Errorf("projection should dedup: %d", proj2.Len())
	}
}

func TestRename(t *testing.T) {
	r := rel(t, []string{"x"}, []Cell{NodeCell(1)})
	r2, err := r.Rename("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Col("y"); !ok {
		t.Error("rename target missing")
	}
	if _, ok := r2.Col("x"); ok {
		t.Error("rename source still present")
	}
	if _, err := r.Rename("zzz", "y"); err == nil {
		t.Error("rename of unknown attribute should fail")
	}
}

func TestUnionDiff(t *testing.T) {
	a := rel(t, []string{"x"}, []Cell{NodeCell(1)}, []Cell{NodeCell(2)})
	b := rel(t, []string{"x"}, []Cell{NodeCell(2)}, []Cell{NodeCell(3)})
	u, err := a.Union(b)
	if err != nil || u.Len() != 3 {
		t.Errorf("Union = %d tuples, err %v; want 3", u.Len(), err)
	}
	d, err := a.Diff(b)
	if err != nil || d.Len() != 1 || !d.Contains(NodeCell(1)) {
		t.Errorf("Diff wrong: %d tuples, err %v", d.Len(), err)
	}
	c := rel(t, []string{"y"}, []Cell{NodeCell(1)})
	if _, err := a.Union(c); err == nil {
		t.Error("union schema mismatch should fail")
	}
	if _, err := a.Diff(c); err == nil {
		t.Error("diff schema mismatch should fail")
	}
}

func TestNaturalJoin(t *testing.T) {
	// R(x, y) ⋈ S(y, z)
	r := rel(t, []string{"x", "y"},
		[]Cell{NodeCell(1), NodeCell(10)},
		[]Cell{NodeCell(2), NodeCell(20)},
	)
	s := rel(t, []string{"y", "z"},
		[]Cell{NodeCell(10), NodeCell(100)},
		[]Cell{NodeCell(10), NodeCell(101)},
		[]Cell{NodeCell(30), NodeCell(300)},
	)
	j, err := r.Join(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Attrs(); len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Errorf("join attrs = %v", got)
	}
	if j.Len() != 2 {
		t.Errorf("join size = %d, want 2", j.Len())
	}
	if !j.Contains(NodeCell(1), NodeCell(10), NodeCell(100)) ||
		!j.Contains(NodeCell(1), NodeCell(10), NodeCell(101)) {
		t.Error("join tuples wrong")
	}
}

func TestJoinNoSharedIsProduct(t *testing.T) {
	r := rel(t, []string{"x"}, []Cell{NodeCell(1)}, []Cell{NodeCell(2)})
	s := rel(t, []string{"y"}, []Cell{NodeCell(10)})
	j, err := r.Join(s)
	if err != nil || j.Len() != 2 {
		t.Errorf("cross join = %d, err %v", j.Len(), err)
	}
	p, err := r.Product(s)
	if err != nil || p.Len() != 2 {
		t.Errorf("Product = %d, err %v", p.Len(), err)
	}
	if _, err := r.Product(r); err == nil {
		t.Error("Product with shared attributes should fail")
	}
}

func TestSortedAndFormat(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddEdge("e", "a", "u", "v", nil).
		MustBuild()
	r := rel(t, []string{"x", "e", "val"},
		[]Cell{NodeCell(1), EdgeCell(0), ValueCell(graph.Str("hi"))},
		[]Cell{NodeCell(0), EdgeCell(0), ValueCell(graph.Int(7))},
	)
	sorted := r.Sorted()
	if len(sorted) != 2 || sorted[0][0].Index != 0 {
		t.Error("Sorted order wrong")
	}
	out := r.Format(g)
	if !strings.Contains(out, "x") || !strings.Contains(out, "u") || !strings.Contains(out, "hi") {
		t.Errorf("Format output missing content:\n%s", out)
	}
	// Formatting without a graph falls back to indices.
	out2 := r.Format(nil)
	if !strings.Contains(out2, "node#0") {
		t.Errorf("nil-graph Format: %s", out2)
	}
}
