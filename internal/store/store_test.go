package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

func dump(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func addEdgeMut(i int, src, tgt string) graph.Mutation {
	return graph.Mutation{Op: graph.MutAddEdge, ID: fmt.Sprintf("m%d", i), Label: "a", Src: src, Tgt: tgt}
}

func TestLoadGetDelete(t *testing.T) {
	s := New(Config{})
	g := gen.Clique(5, "a")
	if _, err := s.Load("g", g, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("g", g, false); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Load err = %v, want ErrExists", err)
	}
	if _, err := s.Load("ro", g, true); err != nil {
		t.Fatal(err)
	}
	h, ok := s.Get("g")
	if !ok || h.Name() != "g" || h.ReadOnly() {
		t.Fatalf("Get(g) = %v, %v", h, ok)
	}
	if names := s.Names(); len(names) != 2 || names[0] != "g" || names[1] != "ro" {
		t.Fatalf("Names = %v", names)
	}
	if err := s.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(nope) = %v, want ErrNotFound", err)
	}
	if err := s.Delete("ro"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete(ro) = %v, want ErrReadOnly", err)
	}
	if err := s.Delete("g"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("g"); ok {
		t.Fatal("deleted graph still resolves")
	}
	st := s.Stats()
	if st.Loads != 2 || st.Deletes != 1 || st.Graphs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMutateVersionsAndPreconditions(t *testing.T) {
	s := New(Config{})
	h, err := s.Load("g", gen.Cycle(4, "a"), false)
	if err != nil {
		t.Fatal(err)
	}
	s0 := h.Snapshot()
	if s0.Version != 1 || s0.Rev != 1 {
		t.Fatalf("initial snapshot v%d r%d", s0.Version, s0.Rev)
	}
	s1, err := h.Mutate([]graph.Mutation{addEdgeMut(0, "v0", "v3")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version != 2 || s1.Rev != 2 {
		t.Fatalf("after commit: v%d r%d, want v2 r2", s1.Version, s1.Rev)
	}
	// Precondition on a stale version fails and changes nothing.
	if _, err := h.Mutate([]graph.Mutation{addEdgeMut(1, "v0", "v1")}, 1); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale precondition err = %v", err)
	}
	if h.Snapshot() != s1 {
		t.Fatal("failed precondition replaced the snapshot")
	}
	// Matching precondition succeeds.
	if _, err := h.Mutate([]graph.Mutation{addEdgeMut(1, "v0", "v1")}, 2); err != nil {
		t.Fatal(err)
	}
	// A failing batch is atomic: snapshot unchanged.
	before := h.Snapshot()
	if _, err := h.Mutate([]graph.Mutation{{Op: graph.MutRemoveEdge, ID: "nope"}}, 0); err == nil {
		t.Fatal("bad batch accepted")
	}
	if h.Snapshot() != before {
		t.Fatal("failed batch replaced the snapshot")
	}
	// Old snapshots keep serving their own state.
	if s0.G.NumLiveEdges() != 4 || s1.G.NumLiveEdges() != 5 {
		t.Fatalf("old snapshots drifted: %d, %d", s0.G.NumLiveEdges(), s1.G.NumLiveEdges())
	}

	ro, err := s.Load("ro", gen.Cycle(3, "a"), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Mutate([]graph.Mutation{addEdgeMut(9, "v0", "v1")}, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Mutate err = %v", err)
	}
}

func TestNoCompactionBelowThreshold(t *testing.T) {
	s := New(Config{CompactThreshold: 100})
	h, err := s.Load("g", gen.Clique(6, "a"), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := h.Mutate([]graph.Mutation{addEdgeMut(i, "v0", "v1")}, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	st := h.Status()
	// The write path performed zero full-CSR rebuilds: every commit is an
	// overlay, the delta depth equals the op count, and the compaction
	// counter never moved.
	if st.Compactions != 0 {
		t.Fatalf("compactions = %d below threshold", st.Compactions)
	}
	if st.DeltaOps != 50 {
		t.Fatalf("delta ops = %d, want 50", st.DeltaOps)
	}
	if st.Version != 51 || st.Rev != 51 {
		t.Fatalf("v%d r%d, want v51 r51", st.Version, st.Rev)
	}
}

func TestCompactionFoldsChain(t *testing.T) {
	s := New(Config{CompactThreshold: 10})
	h, err := s.Load("g", gen.Clique(6, "a"), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := h.Mutate([]graph.Mutation{addEdgeMut(i, "v0", "v1")}, 0); err != nil {
			t.Fatal(err)
		}
	}
	pre := h.Snapshot()
	want := dump(t, pre.G)
	s.Close() // wait for the background compaction

	post := h.Snapshot()
	if post.Version != pre.Version {
		t.Fatalf("compaction changed Version: %d -> %d", pre.Version, post.Version)
	}
	if post.Rev <= pre.Rev {
		t.Fatalf("compaction did not bump Rev: %d -> %d", pre.Rev, post.Rev)
	}
	if post.G.DeltaOps() != 0 {
		t.Fatalf("compacted snapshot has %d delta ops", post.G.DeltaOps())
	}
	if got := dump(t, post.G); !bytes.Equal(got, want) {
		t.Fatal("compaction changed the observable graph state")
	}
	if st := h.Status(); st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	// The pre-compaction snapshot still serves its own state.
	if got := dump(t, pre.G); !bytes.Equal(got, want) {
		t.Fatal("pinned pre-compaction snapshot drifted")
	}
}

// TestConcurrentMutateAndRead hammers one chain with a writer, concurrent
// snapshot readers, and a low compaction threshold, under -race in CI. Each
// reader validates internal consistency of whatever snapshot it grabbed.
func TestConcurrentMutateAndRead(t *testing.T) {
	s := New(Config{CompactThreshold: 16})
	h, err := s.Load("g", gen.Clique(8, "a"), false)
	if err != nil {
		t.Fatal(err)
	}
	const commits = 300
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := h.Snapshot()
				snap.Acquire()
				g := snap.G
				live := 0
				for ei := 0; ei < g.NumEdges(); ei++ {
					if g.EdgeAlive(ei) {
						live++
					}
				}
				if live != g.NumLiveEdges() {
					panic(fmt.Sprintf("snapshot v%d: %d live edges iterated, %d counted",
						snap.Version, live, g.NumLiveEdges()))
				}
				for n := 0; n < g.NumNodes(); n++ {
					for _, ei := range g.Out(n) {
						if !g.EdgeAlive(ei) || g.EdgeSrc(ei) != n {
							panic("adjacency row holds a dead or foreign edge")
						}
					}
				}
				snap.Release()
			}
		}()
	}
	for i := 0; i < commits; i++ {
		muts := []graph.Mutation{addEdgeMut(i, "v1", "v2")}
		if i%3 == 2 {
			muts = []graph.Mutation{{Op: graph.MutRemoveEdge, ID: fmt.Sprintf("m%d", i-1)}}
		}
		if _, err := h.Mutate(muts, 0); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	s.Close()
	st := h.Status()
	if st.Version != commits+1 {
		t.Fatalf("version = %d, want %d", st.Version, commits+1)
	}
	if st.Compactions == 0 {
		t.Fatal("no compaction ran despite a low threshold")
	}
	if st.Pins != 0 {
		t.Fatalf("pins leaked: %d", st.Pins)
	}
	if got, want := s.Stats().MutationBatches, int64(commits); got != want {
		t.Fatalf("mutation batches = %d, want %d", got, want)
	}
}

func TestPinsTrackAcquireRelease(t *testing.T) {
	s := New(Config{})
	h, err := s.Load("g", gen.Cycle(3, "a"), false)
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	snap.Acquire()
	snap.Acquire()
	if p := h.Status().Pins; p != 2 {
		t.Fatalf("pins = %d, want 2", p)
	}
	snap.Release()
	snap.Release()
	if p := h.Status().Pins; p != 0 {
		t.Fatalf("pins = %d, want 0", p)
	}
}
