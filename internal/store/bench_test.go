package store

import (
	"fmt"
	"sync/atomic"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

// BenchmarkStoreMutate measures single-edge commit latency on a live graph:
// each iteration is one Mutate batch (add one edge) over a ScaleFree base,
// with the default compaction threshold so background folds happen at a
// realistic cadence. Reported ns/op is the full MVCC write path: overlay
// clone, CSR-row splice, snapshot publication.
func BenchmarkStoreMutate(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	base := gen.ScaleFree(2000, 4, 42)
	h, err := s.Load("bench", base, false)
	if err != nil {
		b.Fatal(err)
	}
	n := base.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		muts := []graph.Mutation{{
			Op:    graph.MutAddEdge,
			ID:    fmt.Sprintf("bm%d", i),
			Label: "a",
			Src:   string(base.Node(i % n).ID),
			Tgt:   string(base.Node((i*7 + 1) % n).ID),
		}}
		if _, err := h.Mutate(muts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// scanSnapshot is the read workload for the latency benchmarks: a full
// out-adjacency sweep of one snapshot (every live node's out rows), the
// access pattern of a kernel sweep without the automaton around it.
func scanSnapshot(g *graph.Graph) int {
	sum := 0
	for u := 0; u < g.NumNodes(); u++ {
		if !g.NodeAlive(u) {
			continue
		}
		sum += len(g.Out(u))
	}
	return sum
}

// BenchmarkStoreReadQuiescent is the baseline for ReadDuringCompaction:
// the same snapshot sweep with no writer.
func BenchmarkStoreReadQuiescent(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	base := gen.ScaleFree(20000, 4, 42)
	h, err := s.Load("bench", base, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		snap := h.Snapshot()
		snap.Acquire()
		sum += scanSnapshot(snap.G)
		snap.Release()
	}
	if sum == 0 {
		b.Fatal("empty sweep")
	}
}

// BenchmarkStoreReadDuringCompaction measures snapshot-read latency while a
// writer commits continuously against a low compaction threshold, so reads
// overlap both overlay chains and background CSR folds — the
// read-latency-during-compaction number in EXPERIMENTS.md.
func BenchmarkStoreReadDuringCompaction(b *testing.B) {
	s := New(Config{CompactThreshold: 64})
	defer s.Close()
	base := gen.ScaleFree(20000, 4, 42)
	h, err := s.Load("bench", base, false)
	if err != nil {
		b.Fatal(err)
	}
	n := base.NumNodes()
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; !stop.Load(); i++ {
			muts := []graph.Mutation{{
				Op:    graph.MutAddEdge,
				ID:    fmt.Sprintf("rc%d", i),
				Label: "a",
				Src:   string(base.Node(i % n).ID),
				Tgt:   string(base.Node((i*7 + 1) % n).ID),
			}}
			if _, err := h.Mutate(muts, 0); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		snap := h.Snapshot()
		snap.Acquire()
		sum += scanSnapshot(snap.G)
		snap.Release()
	}
	b.StopTimer()
	stop.Store(true)
	<-done
	if sum == 0 {
		b.Fatal("empty sweep")
	}
	if h.Status().Compactions == 0 && b.N > 200 {
		b.Fatal("writer never triggered a compaction")
	}
}
