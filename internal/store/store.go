// Package store is the versioned graph store behind the server: it owns
// named graphs and hands out immutable *graph.Graph snapshots via
// copy-on-write MVCC, so every in-flight query keeps a perfectly consistent
// view while writes land.
//
// Each graph is a version chain. Writes (Handle.Mutate) are serialized by a
// per-graph write lock, applied as a delta overlay over the chain's
// materialized base (graph.Apply — incremental adjacency maintenance, no
// CSR rebuild), and published as a new Snapshot through an atomic pointer.
// Readers never block: a query pins whatever snapshot was current at
// admission and keeps it until it finishes, regardless of later commits.
//
// When a chain's delta depth crosses the compaction threshold, a background
// compactor folds it into a fresh fully-indexed base (graph.Materialize)
// off the write lock, replays any batches that committed meanwhile from the
// delta log, and publishes the compacted snapshot under a new revision —
// the same version, because compaction is observationally a no-op.
//
// Version vs revision: Version is the client-visible commit counter (used
// by mutate-API preconditions); Rev additionally bumps on compaction and is
// what the engine folds into its plan-cache key, because cached
// graph-resolved products are keyed by the physical graph they were
// resolved against.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"graphquery/internal/graph"
)

// The store's error taxonomy; the server maps these onto its HTTP write
// taxonomy (409 exists / version mismatch, 404 not found, 405 read-only).
var (
	ErrExists          = errors.New("store: graph already exists")
	ErrNotFound        = errors.New("store: no such graph")
	ErrReadOnly        = errors.New("store: graph is read-only")
	ErrVersionMismatch = errors.New("store: version precondition failed")
)

// DefaultCompactThreshold is the delta depth at which a chain is folded
// into a fresh base when the store's config leaves the threshold zero.
const DefaultCompactThreshold = 4096

// Config tunes a Store.
type Config struct {
	// CompactThreshold is the delta depth (mutations since the last
	// materialized base) that triggers background compaction. 0 uses
	// DefaultCompactThreshold; negative disables compaction entirely.
	CompactThreshold int
	// OnSwap, when non-nil, observes every snapshot publication — commits
	// and compactions — in commit order (the per-graph write lock is held).
	// The server uses it to point the graph's engine at the new snapshot.
	OnSwap func(name string, snap *Snapshot)
}

// Store owns named graph version chains. Create with New.
type Store struct {
	cfg Config

	mu     sync.RWMutex
	graphs map[string]*Handle

	// compactors tracks in-flight background compactions so Close can wait
	// for them (tests, clean shutdown).
	compactors sync.WaitGroup

	loads           atomic.Int64
	deletes         atomic.Int64
	mutationBatches atomic.Int64
	mutationOps     atomic.Int64
	compactions     atomic.Int64
}

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = DefaultCompactThreshold
	}
	return &Store{cfg: cfg, graphs: make(map[string]*Handle)}
}

// Snapshot is one immutable published version of a graph. G is safe for
// unlimited concurrent readers; Acquire/Release track how many queries are
// pinned to the graph's chain (observability — snapshots are garbage
// collected by the runtime, not by the refcount).
type Snapshot struct {
	G       *graph.Graph
	Version uint64 // client-visible commit counter (preconditions)
	Rev     uint64 // physical revision: commits + compactions (cache keys)

	h *Handle
}

// Acquire records a reader pinned to this snapshot's graph.
func (s *Snapshot) Acquire() { s.h.pins.Add(1) }

// Release undoes one Acquire.
func (s *Snapshot) Release() { s.h.pins.Add(-1) }

// Handle is one named graph's version chain.
type Handle struct {
	store    *Store
	name     string
	readOnly bool

	// writeMu serializes Mutate and the compactor's publish step — the
	// single-writer discipline graph.Apply requires.
	writeMu sync.Mutex
	cur     atomic.Pointer[Snapshot]

	// log holds the mutation batches committed since the last materialized
	// base, so a compaction can replay batches that land while it
	// materializes off-lock. Guarded by writeMu. Unused (nil) when
	// compaction is disabled.
	log [][]graph.Mutation

	pins        atomic.Int64
	compacting  atomic.Bool
	compactions atomic.Int64
}

// Name returns the graph's registered name.
func (h *Handle) Name() string { return h.name }

// ReadOnly reports whether Mutate and Delete are rejected for this graph.
func (h *Handle) ReadOnly() bool { return h.readOnly }

// Snapshot returns the current published snapshot. The result is immutable
// and safe to read for as long as the caller keeps it.
func (h *Handle) Snapshot() *Snapshot { return h.cur.Load() }

// Load registers g under name. Read-only graphs (the boot-time catalog)
// reject Mutate and Delete. The initial snapshot is Version 1, Rev 1.
func (s *Store) Load(name string, g *graph.Graph, readOnly bool) (*Handle, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty graph name")
	}
	h := &Handle{store: s, name: name, readOnly: readOnly}
	snap := &Snapshot{G: g, Version: 1, Rev: 1, h: h}
	h.cur.Store(snap)

	s.mu.Lock()
	if _, dup := s.graphs[name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	s.graphs[name] = h
	s.mu.Unlock()

	s.loads.Add(1)
	if s.cfg.OnSwap != nil {
		s.cfg.OnSwap(name, snap)
	}
	return h, nil
}

// Get resolves a named graph.
func (s *Store) Get(name string) (*Handle, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.graphs[name]
	return h, ok
}

// Delete removes a graph from the store. In-flight queries pinned to its
// snapshots finish undisturbed — the chain stays alive until they drop it.
// Read-only graphs cannot be deleted.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	h, ok := s.graphs[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if h.readOnly {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrReadOnly, name)
	}
	delete(s.graphs, name)
	s.mu.Unlock()
	s.deletes.Add(1)
	return nil
}

// Drop removes a graph unconditionally — read-only or not — without
// touching the deletes counter. It backs the server's replace-on-register
// semantics; client-facing deletion goes through Delete and its taxonomy.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	delete(s.graphs, name)
	s.mu.Unlock()
}

// Names lists the registered graph names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Close waits for in-flight background compactions to finish.
func (s *Store) Close() { s.compactors.Wait() }

// Mutate applies one batch atomically and publishes the resulting version.
// ifVersion, when nonzero, is a precondition on the current Version
// (optimistic concurrency for read-modify-write clients). On any error the
// published snapshot is unchanged. The new snapshot is returned.
func (h *Handle) Mutate(muts []graph.Mutation, ifVersion uint64) (*Snapshot, error) {
	if h.readOnly {
		return nil, fmt.Errorf("%w: %q", ErrReadOnly, h.name)
	}
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	cur := h.cur.Load()
	if ifVersion != 0 && cur.Version != ifVersion {
		return nil, fmt.Errorf("%w: graph %q is at version %d, precondition wanted %d",
			ErrVersionMismatch, h.name, cur.Version, ifVersion)
	}
	ng, err := cur.G.Apply(muts)
	if err != nil {
		return nil, err
	}
	next := &Snapshot{G: ng, Version: cur.Version + 1, Rev: cur.Rev + 1, h: h}
	if h.store.cfg.CompactThreshold > 0 {
		// Keep the batch for compaction replay; the slice is owned by the
		// caller per the HTTP layer's decode, never mutated after Apply.
		h.log = append(h.log, muts)
	}
	h.cur.Store(next)
	h.store.mutationBatches.Add(1)
	h.store.mutationOps.Add(int64(len(muts)))
	if h.store.cfg.OnSwap != nil {
		h.store.cfg.OnSwap(h.name, next)
	}
	h.maybeCompact(ng)
	return next, nil
}

// maybeCompact launches a background compaction when the chain's delta
// depth crossed the threshold and none is running. Called under writeMu.
func (h *Handle) maybeCompact(g *graph.Graph) {
	t := h.store.cfg.CompactThreshold
	if t <= 0 || g.DeltaOps() < t {
		return
	}
	if !h.compacting.CompareAndSwap(false, true) {
		return
	}
	h.store.compactors.Add(1)
	go h.compact()
}

// compact folds the chain into a fresh materialized base. The expensive
// Materialize runs off the write lock — writers and readers proceed —
// then batches that committed meanwhile are replayed from the delta log
// under the lock (cheap: proportional to what landed during the rebuild)
// and the compacted snapshot is published as Rev+1 with the same Version.
func (h *Handle) compact() {
	defer h.store.compactors.Done()
	defer h.compacting.Store(false)

	h.writeMu.Lock()
	snap := h.cur.Load()
	mark := len(h.log)
	h.writeMu.Unlock()

	base, err := snap.G.Materialize()
	if err != nil {
		// Cannot happen for a consistent chain (Materialize replays live
		// elements through the Builder); leave the overlay chain serving.
		return
	}

	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	for _, batch := range h.log[mark:] {
		ng, err := base.Apply(batch)
		if err != nil {
			// Replaying committed batches onto the equivalent state cannot
			// fail; bail out leaving the (correct) overlay chain in place.
			return
		}
		base = ng
	}
	cur := h.cur.Load()
	next := &Snapshot{G: base, Version: cur.Version, Rev: cur.Rev + 1, h: h}
	h.cur.Store(next)
	h.log = nil
	h.compactions.Add(1)
	h.store.compactions.Add(1)
	if h.store.cfg.OnSwap != nil {
		h.store.cfg.OnSwap(h.name, next)
	}
}

// GraphStatus is one graph's store-level observability snapshot.
type GraphStatus struct {
	Name        string `json:"name"`
	ReadOnly    bool   `json:"read_only"`
	Version     uint64 `json:"version"`
	Rev         uint64 `json:"rev"`
	DeltaOps    int    `json:"delta_ops"`
	Compactions int64  `json:"compactions"`
	Pins        int64  `json:"pins"`
	LiveNodes   int    `json:"live_nodes"`
	LiveEdges   int    `json:"live_edges"`
}

// Status snapshots one graph's store-level counters.
func (h *Handle) Status() GraphStatus {
	snap := h.cur.Load()
	return GraphStatus{
		Name:        h.name,
		ReadOnly:    h.readOnly,
		Version:     snap.Version,
		Rev:         snap.Rev,
		DeltaOps:    snap.G.DeltaOps(),
		Compactions: h.compactions.Load(),
		Pins:        h.pins.Load(),
		LiveNodes:   snap.G.NumLiveNodes(),
		LiveEdges:   snap.G.NumLiveEdges(),
	}
}

// Stats is the store-wide observability snapshot.
type Stats struct {
	Graphs          int           `json:"graphs"`
	Loads           int64         `json:"loads"`
	Deletes         int64         `json:"deletes"`
	MutationBatches int64         `json:"mutation_batches"`
	MutationOps     int64         `json:"mutation_ops"`
	Compactions     int64         `json:"compactions"`
	PerGraph        []GraphStatus `json:"per_graph"`
}

// Stats snapshots the store counters and every graph's status, sorted by
// name.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	handles := make([]*Handle, 0, len(s.graphs))
	for _, h := range s.graphs {
		handles = append(handles, h)
	}
	s.mu.RUnlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].name < handles[j].name })
	st := Stats{
		Graphs:          len(handles),
		Loads:           s.loads.Load(),
		Deletes:         s.deletes.Load(),
		MutationBatches: s.mutationBatches.Load(),
		MutationOps:     s.mutationOps.Load(),
		Compactions:     s.compactions.Load(),
		PerGraph:        make([]GraphStatus, len(handles)),
	}
	for i, h := range handles {
		st.PerGraph[i] = h.Status()
	}
	return st
}
