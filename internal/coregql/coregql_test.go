package coregql

import (
	"errors"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/relalg"
)

// twoPath builds u -e1-> v -e2-> w with k-values on nodes and edges.
func twoPath(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.NewBuilder().
		AddNode("u", "L", graph.Props{"k": graph.Int(1)}).
		AddNode("v", "L", graph.Props{"k": graph.Int(2)}).
		AddNode("w", "M", graph.Props{"k": graph.Int(3)}).
		AddEdge("e1", "a", "u", "v", graph.Props{"k": graph.Int(10)}).
		AddEdge("e2", "a", "v", "w", graph.Props{"k": graph.Int(20)}).
		MustBuild()
}

func TestFigure4NodePattern(t *testing.T) {
	g := twoPath(t)
	ms, err := EvalPattern(g, Node("x"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("(x) matched %d, want 3", len(ms))
	}
	for _, m := range ms {
		if m.Path.Len() != 0 || len(m.Binding) != 1 {
			t.Errorf("node match malformed: %+v", m)
		}
	}
	// Anonymous node binds nothing.
	ms, _ = EvalPattern(g, AnonNode(), Options{})
	if len(ms) != 3 || len(ms[0].Binding) != 0 {
		t.Error("() should match all nodes with empty bindings")
	}
}

func TestFigure4EdgePattern(t *testing.T) {
	g := twoPath(t)
	ms, err := EvalPattern(g, Edge("y"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("-y-> matched %d, want 2", len(ms))
	}
	for _, m := range ms {
		// Every produced path is node-to-node (Section 4.1.1).
		if !m.Path.StartsWithNode() || !m.Path.EndsWithNode() || m.Path.Len() != 1 {
			t.Errorf("edge match path malformed: %v", m.Path)
		}
		if !m.Binding["y"].IsEdge() {
			t.Error("edge variable must bind the edge")
		}
	}
}

func TestFigure4Concat(t *testing.T) {
	g := twoPath(t)
	// (x) -y-> (z): joins on shared nodes via path composition.
	p := Concat(Node("x"), Edge("y"), Node("z"))
	ms, err := EvalPattern(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matched %d, want 2", len(ms))
	}
	// Repeated variable forces a join: (x) -y-> (x) needs a self-loop.
	p = Concat(Node("x"), Edge("y"), Node("x"))
	ms, _ = EvalPattern(g, p, Options{})
	if len(ms) != 0 {
		t.Errorf("(x)-y->(x) without self-loops matched %d", len(ms))
	}
}

func TestFigure4Union(t *testing.T) {
	g := twoPath(t)
	// (x) + (x): same FV, idempotent under set semantics.
	ms, err := EvalPattern(g, Union(Node("x"), Node("x")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Errorf("union matched %d, want 3 (dedup)", len(ms))
	}
	// Different FV: rejected (no nulls, Section 4.2).
	if _, err := EvalPattern(g, Union(Node("x"), Node("z")), Options{}); err == nil {
		t.Error("union with different free variables must be invalid")
	}
}

func TestFigure4RepeatErasesVariables(t *testing.T) {
	g := twoPath(t)
	// ((x) -y-> (x'))^{2..2}: FV = ∅, so the inner variables do not join
	// across iterations and the pattern matches the 2-edge path.
	unit := Concat(Node("x"), Edge("y"), Node("x2"))
	rep := Repeat(unit, 2, 2)
	if fv := FreeVars(rep); len(fv) != 0 {
		t.Fatalf("FV(π^{2..2}) = %v, want ∅", fv)
	}
	ms, err := EvalPattern(g, rep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Path.Len() == 2 {
			found = true
			if len(m.Binding) != 0 {
				t.Error("repeat must erase bindings")
			}
		}
	}
	if !found {
		t.Error("π^{2..2} should match the 2-edge path")
	}
}

// TestExample1Phenomenon: π^{2..2} is NOT equivalent to ππ when π carries a
// variable — the Example 1 disconnect between patterns and regular
// expressions, reproduced in CoreGQL.
func TestExample1Phenomenon(t *testing.T) {
	g := twoPath(t)
	unit := Concat(AnonNode(), Edge("z"), AnonNode())
	// ππ: both occurrences of z must bind the same edge, which forces the
	// two copies to overlap — impossible on a simple 2-path with z shared.
	pipi := Concat(unit, unit)
	msJoin, err := EvalPattern(g, pipi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msJoin {
		if m.Path.Len() == 2 {
			t.Error("ππ with shared z cannot match a 2-edge path (join on z)")
		}
	}
	// π^{2..2}: variables erased, matches the 2-edge path.
	msRep, err := EvalPattern(g, Repeat(unit, 2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	has2 := false
	for _, m := range msRep {
		if m.Path.Len() == 2 {
			has2 = true
		}
	}
	if !has2 {
		t.Error("π^{2..2} should match the 2-edge path")
	}
}

func TestConditionEvaluation(t *testing.T) {
	g := twoPath(t)
	u := map[string]graph.Object{"x": graph.MakeNodeObject(g.MustNode("u"))}
	uv := map[string]graph.Object{
		"x": graph.MakeNodeObject(g.MustNode("u")),
		"y": graph.MakeNodeObject(g.MustNode("v")),
	}
	cases := []struct {
		c    Condition
		b    map[string]graph.Object
		want bool
	}{
		{CmpConst("x", "k", graph.OpEq, graph.Int(1)), u, true},
		{CmpConst("x", "k", graph.OpGt, graph.Int(5)), u, false},
		{Cmp("x", "k", graph.OpLt, "y", "k"), uv, true},
		{Cmp("y", "k", graph.OpLt, "x", "k"), uv, false},
		{HasLabel("x", "L"), u, true},
		{HasLabel("x", "M"), u, false},
		{And{HasLabel("x", "L"), CmpConst("x", "k", graph.OpEq, graph.Int(1))}, u, true},
		{Or{HasLabel("x", "M"), CmpConst("x", "k", graph.OpEq, graph.Int(1))}, u, true},
		{Not{HasLabel("x", "M")}, u, true},
		{CmpConst("x", "missing", graph.OpEq, graph.Int(1)), u, false}, // undefined prop
		{CmpConst("q", "k", graph.OpEq, graph.Int(1)), u, false},       // unbound var
	}
	for _, tc := range cases {
		if got := tc.c.Holds(g, tc.b); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.c, got, tc.want)
		}
	}
}

// TestPiInc: the increasing-node-values pattern of Section 5.1 works.
func TestPiInc(t *testing.T) {
	inc := Concat(
		Node("x"),
		Star(Filter(Concat(Node("u"), AnonEdge(), Node("v")), Cmp("u", "k", graph.OpLt, "v", "k"))),
		Node("y"),
	)
	up := gen.DateNodePath("a", []int64{1, 2, 3, 4})
	ms, err := EvalPattern(up, inc, Options{MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	full := false
	for _, m := range ms {
		if m.Path.Len() == 3 {
			full = true
		}
	}
	if !full {
		t.Error("πinc should match the increasing 3-edge node path end-to-end")
	}
	down := gen.DateNodePath("a", []int64{3, 4, 1, 2})
	ms, err = EvalPattern(down, inc, Options{MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Path.Len() == 3 {
			t.Error("πinc must not match the 3,4,1,2 node path end-to-end")
		}
	}
}

// TestProposition23Naive: the naive stride-2 pattern for increasing EDGE
// values is matched by the 3,4,1,2 edge path — the false positive of
// Example 3 and Proposition 23.
func TestProposition23Naive(t *testing.T) {
	naive := Concat(
		Node("x"),
		Star(Filter(
			Concat(AnonNode(), Edge("u"), AnonNode(), Edge("v"), AnonNode()),
			Cmp("u", "k", graph.OpLt, "v", "k"))),
		Node("y"),
	)
	bad := gen.DateEdgePath("a", []int64{3, 4, 1, 2})
	ms, err := EvalPattern(bad, naive, Options{MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	falsePositive := false
	for _, m := range ms {
		if m.Path.Len() == 4 {
			falsePositive = true
		}
	}
	if !falsePositive {
		t.Error("the naive pattern SHOULD (incorrectly) match 3,4,1,2 — that is the paper's point")
	}
	// And a genuinely increasing path also matches.
	good := gen.DateEdgePath("a", []int64{1, 2, 3, 4})
	ms, _ = EvalPattern(good, naive, Options{MaxLen: 5})
	okFull := false
	for _, m := range ms {
		if m.Path.Len() == 4 {
			okFull = true
		}
	}
	if !okFull {
		t.Error("naive pattern should match the increasing path too")
	}
}

func TestUnboundedNeedsMaxLen(t *testing.T) {
	g := gen.Cycle(3, "a")
	p := Concat(Node("x"), Star(Concat(AnonNode(), AnonEdge(), AnonNode())), Node("y"))
	if _, err := EvalPattern(g, p, Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
	ms, err := EvalPattern(g, p, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Error("bounded evaluation should produce matches")
	}
}

func TestValidateConditionVars(t *testing.T) {
	// Condition over a variable erased by repetition: invalid.
	p := Filter(Repeat(Concat(Node("u"), AnonEdge(), Node("v")), 0, -1),
		Cmp("u", "k", graph.OpLt, "v", "k"))
	if err := Validate(p); err == nil {
		t.Error("condition over erased variables must be invalid")
	}
	// Negative bounds.
	if err := Validate(Repeat(Node("x"), 2, 1)); err == nil {
		t.Error("bad repetition bounds must be invalid")
	}
}

func TestOutputRelation(t *testing.T) {
	g := twoPath(t)
	// π = (x) -e-> (y), Ω = (x, x.k, e, y.k).
	p := Concat(Node("x"), Edge("e"), Node("y"))
	rel, err := Output(g, p, []string{"x", "x.k", "e", "y.k"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Arity() != 4 {
		t.Fatalf("output relation %d×%d, want 2×4", rel.Len(), rel.Arity())
	}
	// Undefined property drops the row (no nulls).
	rel2, err := Output(g, p, []string{"x", "x.missing"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != 0 {
		t.Errorf("rows with undefined properties must be dropped, got %d", rel2.Len())
	}
	// Unbound variable in Ω also drops rows.
	rel3, err := Output(g, p, []string{"nope"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel3.Len() != 0 {
		t.Errorf("unbound Ω variable must drop rows, got %d", rel3.Len())
	}
}

// TestSection413Example reproduces the worked CoreGQL query of Section
// 4.1.3: nodes u (with property s) connected to two different nodes with
// the same value of property p.
func TestSection413Example(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("hub", "", graph.Props{"s": graph.Str("center")}).
		AddNode("n1", "", graph.Props{"p": graph.Int(7)}).
		AddNode("n2", "", graph.Props{"p": graph.Int(7)}).
		AddNode("n3", "", graph.Props{"p": graph.Int(8)}).
		AddNode("lone", "", graph.Props{"s": graph.Str("side")}).
		AddEdge("e1", "a", "hub", "n1", nil).
		AddEdge("e2", "a", "hub", "n2", nil).
		AddEdge("e3", "a", "hub", "n3", nil).
		AddEdge("e4", "a", "lone", "n3", nil).
		MustBuild()
	// π_i := (x) --> (x_i), Ω_i = (x, x.s, x_i, x_i.p)
	p1 := Concat(Node("x"), AnonEdge(), Node("x1"))
	p2 := Concat(Node("x"), AnonEdge(), Node("x2"))
	r1, err := Output(g, p1, []string{"x", "x.s", "x1", "x1.p"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Output(g, p2, []string{"x", "x.s", "x2", "x2.p"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := r1.Join(r2)
	if err != nil {
		t.Fatal(err)
	}
	x1c, _ := j.Col("x1")
	x2c, _ := j.Col("x2")
	p1c, _ := j.Col("x1.p")
	p2c, _ := j.Col("x2.p")
	sel := j.Select(func(tu []relalg.Cell) bool {
		return !tu[x1c].Equal(tu[x2c]) && tu[p1c].Equal(tu[p2c])
	})
	proj, err := sel.Project("x", "x.s")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 1 {
		t.Fatalf("result = %d rows, want 1:\n%s", proj.Len(), proj.Format(g))
	}
	row := proj.Sorted()[0]
	if row[0].Format(g) != "hub" || row[1].Format(g) != "center" {
		t.Errorf("row = %v %v", row[0].Format(g), row[1].Format(g))
	}
}

// TestRepeatMinWithNullableBase is a regression test: when the repeated
// subpattern can match a single node (zero edges), a path realizable at an
// early level is also realizable at every later level, and levels ≥ Min
// must still report it.
func TestRepeatMinWithNullableBase(t *testing.T) {
	g := twoPath(t)
	// π = (() + ()-->()): a single node or one edge.
	base := Union(AnonNode(), Concat(AnonNode(), AnonEdge(), AnonNode()))
	// π{2..2}: 1-edge paths arise as node·edge and edge·node compositions
	// and must be present even though they already exist at level 1.
	ms, err := EvalPattern(g, Repeat(base, 2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	oneEdge := 0
	for _, m := range ms {
		if m.Path.Len() == 1 {
			oneEdge++
		}
	}
	if oneEdge != 2 {
		t.Errorf("π{2,2} should include both 1-edge paths, got %d", oneEdge)
	}
	// And π{3..3} reaches the full 2-edge path.
	ms, err = EvalPattern(g, Repeat(base, 3, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	twoEdge := false
	for _, m := range ms {
		if m.Path.Len() == 2 {
			twoEdge = true
		}
	}
	if !twoEdge {
		t.Error("π{3,3} should include the 2-edge path")
	}
}
