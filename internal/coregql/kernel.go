// Kernel unification of CoreGQL patterns (this PR's tentpole for the
// coregql tier): the path-finding core of a pattern — its regular skeleton,
// where every edge atom is label-free — compiles to an NFA and runs on the
// product-graph kernel, inheriting amortized cancellation, budgets, live
// progress, the cost-based planner, and the sharded direction-optimizing
// sweep. Bindings, conditions, and repeated-variable joins stay tier-local:
// PairsCtx routes regular patterns through the kernel and falls back to the
// metered reference evaluator otherwise, byte-identical on the common
// domain (crossval enforces this).
package coregql

import (
	"context"
	"sort"

	"graphquery/internal/automata"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// EvalPatternCtx is EvalPattern under a context and budget: every candidate
// the evaluator considers is charged to the states budget (amortized every
// pg.CheckInterval), each final match to the rows budget. Errors follow the
// standard taxonomy (pg.ErrCanceled, *pg.BudgetError) and return no partial
// results.
func EvalPatternCtx(ctx context.Context, g *graph.Graph, p Pattern, opts Options, b pg.Budget) ([]Match, error) {
	return EvalPatternMeter(g, p, opts, pg.NewMeter(ctx, b))
}

// EvalPatternMeter is EvalPattern with an explicit meter (may be nil).
func EvalPatternMeter(g *graph.Graph, p Pattern, opts Options, m *pg.Meter) ([]Match, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	if hasUnboundedRepeat(p) && opts.MaxLen <= 0 {
		return nil, ErrUnbounded
	}
	tick := pg.NewTicker(m, nil)
	opts.tick = &tick
	ms, err := evalRec(g, p, opts)
	if err != nil {
		return nil, err
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	if err := m.AddRows(int64(len(ms))); err != nil {
		return nil, err
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Path.Len() != ms[j].Path.Len() {
			return ms[i].Path.Len() < ms[j].Path.Len()
		}
		return ms[i].key() < ms[j].key()
	})
	return ms, nil
}

// PairsCtx computes the endpoint pairs of the pattern's match set —
// {(src(ρ), tgt(ρ)) | ρ matches π} as sorted, deduplicated (u,v) index
// pairs. Regular patterns run entirely on the product-graph kernel
// (opts.Plan, opts.Parallelism, budgets, and meter all apply); patterns
// whose semantics exceed their skeleton fall back to the metered match
// evaluator plus endpoint projection. opts.MaxLen bounds path length in
// both paths — the kernel one via a length-unrolled automaton, so the two
// agree exactly.
func PairsCtx(ctx context.Context, g *graph.Graph, p Pattern, opts eval.Options) ([][2]int, error) {
	if Regular(p) {
		if hasUnboundedRepeat(p) && opts.MaxLen <= 0 {
			return nil, ErrUnbounded
		}
		nfa := rpq.Compile(Skeleton(p))
		if opts.MaxLen > 0 {
			nfa = automata.BoundLength(nfa, opts.MaxLen)
		}
		prod := eval.NewProductInstrumented(g, nfa, nil)
		return eval.PairsProductCtx(ctx, prod, opts)
	}
	// Fallback: reference evaluator + projection.
	m := opts.Meter
	if m == nil {
		m = pg.NewMeter(ctx, opts.Budget)
	}
	ms, err := EvalPatternMeter(g, p, Options{MaxLen: opts.MaxLen}, m)
	if err != nil {
		return nil, err
	}
	return ProjectPairs(g, ms), nil
}

// ProjectPairs projects matches onto sorted, deduplicated endpoint pairs.
func ProjectPairs(g *graph.Graph, ms []Match) [][2]int {
	seen := map[[2]int]struct{}{}
	var out [][2]int
	for _, m := range ms {
		s, ok1 := m.Path.Src(g)
		t, ok2 := m.Path.Tgt(g)
		if !ok1 || !ok2 {
			continue
		}
		pr := [2]int{s, t}
		if _, dup := seen[pr]; dup {
			continue
		}
		seen[pr] = struct{}{}
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Regular reports whether the pattern's match set is determined by its
// regular skeleton: no conditions and no variable occurring twice (a
// repeated variable is an equality join the skeleton cannot see). CoreGQL
// atoms carry no labels, so every remaining pattern is skeleton-faithful.
func Regular(p Pattern) bool {
	counts := map[string]int{}
	regular := true
	var walk func(Pattern)
	walk = func(p Pattern) {
		switch n := p.(type) {
		case NodePat:
			if n.Var != "" {
				counts[n.Var]++
			}
		case EdgePat:
			if n.Var != "" {
				counts[n.Var]++
			}
		case ConcatPat:
			walk(n.Left)
			walk(n.Right)
		case UnionPat:
			walk(n.Left)
			walk(n.Right)
		case RepeatPat:
			walk(n.Sub)
		case CondPat:
			regular = false
		default:
			regular = false
		}
	}
	walk(p)
	if !regular {
		return false
	}
	for _, c := range counts {
		if c > 1 {
			return false
		}
	}
	return true
}

// Skeleton lowers a pattern to the RPQ of its path language: node patterns
// are ε, edge patterns match any single edge, and concatenation, union, and
// repetition map structurally. Total on Regular patterns; CondPat lowers to
// its subpattern's skeleton (an over-approximation — gate on Regular).
func Skeleton(p Pattern) rpq.Expr {
	switch n := p.(type) {
	case NodePat:
		return rpq.Eps()
	case EdgePat:
		return rpq.Any()
	case ConcatPat:
		return rpq.Seq(Skeleton(n.Left), Skeleton(n.Right))
	case UnionPat:
		return rpq.Alt(Skeleton(n.Left), Skeleton(n.Right))
	case RepeatPat:
		if n.Min == 0 && n.Max < 0 {
			return rpq.Kleene(Skeleton(n.Sub))
		}
		return rpq.Between(Skeleton(n.Sub), n.Min, n.Max)
	case CondPat:
		return Skeleton(n.Sub)
	default:
		return rpq.Eps()
	}
}
