package coregql

import (
	"errors"
	"fmt"
	"sort"

	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/relalg"
)

// ErrUnbounded reports an unbounded repetition evaluated without a MaxLen.
var ErrUnbounded = errors.New("coregql: unbounded repetition requires Options.MaxLen")

// Options bound pattern evaluation.
type Options struct {
	// MaxLen bounds the length (edge count) of produced paths. Required
	// when the pattern contains an unbounded repetition.
	MaxLen int

	// tick, when set, meters every candidate the evaluator considers
	// (EvalPatternMeter wires it); the zero Options meters nothing.
	tick *pg.Ticker
}

// step charges one unit of evaluator work against the meter, if any.
func (o Options) step() error {
	if o.tick == nil {
		return nil
	}
	return o.tick.Step()
}

// EvalPattern computes ⟦π⟧_G per Figure 4, as a deduplicated set of
// matches ordered by path length then keys.
func EvalPattern(g *graph.Graph, p Pattern, opts Options) ([]Match, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	if hasUnboundedRepeat(p) && opts.MaxLen <= 0 {
		return nil, ErrUnbounded
	}
	ms, err := evalRec(g, p, opts)
	if err != nil {
		return nil, err
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Path.Len() != ms[j].Path.Len() {
			return ms[i].Path.Len() < ms[j].Path.Len()
		}
		return ms[i].key() < ms[j].key()
	})
	return ms, nil
}

func hasUnboundedRepeat(p Pattern) bool {
	switch n := p.(type) {
	case ConcatPat:
		return hasUnboundedRepeat(n.Left) || hasUnboundedRepeat(n.Right)
	case UnionPat:
		return hasUnboundedRepeat(n.Left) || hasUnboundedRepeat(n.Right)
	case RepeatPat:
		return n.Max < 0 || hasUnboundedRepeat(n.Sub)
	case CondPat:
		return hasUnboundedRepeat(n.Sub)
	default:
		return false
	}
}

func dedup(ms []Match) []Match {
	seen := map[string]struct{}{}
	out := ms[:0]
	for _, m := range ms {
		k := m.key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, m)
	}
	return out
}

func evalRec(g *graph.Graph, p Pattern, opts Options) ([]Match, error) {
	switch n := p.(type) {
	case NodePat:
		out := make([]Match, 0, g.NumNodes())
		for i := 0; i < g.NumNodes(); i++ {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if !g.NodeAlive(i) {
				continue
			}
			b := map[string]graph.Object{}
			if n.Var != "" {
				b[n.Var] = graph.MakeNodeObject(i)
			}
			out = append(out, Match{Path: gpath.OfNode(i), Binding: b})
		}
		return out, nil
	case EdgePat:
		out := make([]Match, 0, g.NumEdges())
		for e := 0; e < g.NumEdges(); e++ {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if !g.EdgeAlive(e) {
				continue
			}
			b := map[string]graph.Object{}
			if n.Var != "" {
				b[n.Var] = graph.MakeEdgeObject(e)
			}
			out = append(out, Match{Path: gpath.Triple(g, e), Binding: b})
		}
		return out, nil
	case ConcatPat:
		left, err := evalRec(g, n.Left, opts)
		if err != nil {
			return nil, err
		}
		right, err := evalRec(g, n.Right, opts)
		if err != nil {
			return nil, err
		}
		joined, err := concatMatches(g, left, right, opts)
		if err != nil {
			return nil, err
		}
		return dedup(joined), nil
	case UnionPat:
		out, err := evalRec(g, n.Left, opts)
		if err != nil {
			return nil, err
		}
		right, err := evalRec(g, n.Right, opts)
		if err != nil {
			return nil, err
		}
		return dedup(append(out, right...)), nil
	case RepeatPat:
		return evalRepeat(g, n, opts)
	case CondPat:
		ms, err := evalRec(g, n.Sub, opts)
		if err != nil {
			return nil, err
		}
		var out []Match
		for _, m := range ms {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if n.Cond.Holds(g, m.Binding) {
				out = append(out, m)
			}
		}
		return out, nil
	default:
		panic(fmt.Sprintf("coregql: unknown pattern %T", p))
	}
}

// concatMatches joins two match sets: paths must compose node-to-node
// (tgt(p₁) = src(p₂)) and bindings must be compatible.
func concatMatches(g *graph.Graph, left, right []Match, opts Options) ([]Match, error) {
	// Bucket right-hand matches by source node.
	bySrc := map[int][]Match{}
	for _, m := range right {
		if s, ok := m.Path.Src(g); ok {
			bySrc[s] = append(bySrc[s], m)
		}
	}
	var out []Match
	for _, lm := range left {
		t, ok := lm.Path.Tgt(g)
		if !ok {
			continue
		}
		for _, rm := range bySrc[t] {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if opts.MaxLen > 0 && lm.Path.Len()+rm.Path.Len() > opts.MaxLen {
				continue
			}
			b, compatible := joinBindings(lm.Binding, rm.Binding)
			if !compatible {
				continue
			}
			joined, ok := gpath.Concat(g, lm.Path, rm.Path)
			if !ok {
				continue
			}
			out = append(out, Match{Path: joined, Binding: b})
		}
	}
	return out, nil
}

// evalRepeat implements ⟦π^{n..m}⟧ of Figure 4: iterated node-to-node
// composition with the bindings erased (µ∅), which is exactly the
// free-variable erasure FV(π^{n..m}) = ∅.
func evalRepeat(g *graph.Graph, n RepeatPat, opts Options) ([]Match, error) {
	base, err := evalRec(g, n.Sub, opts)
	if err != nil {
		return nil, err
	}
	// Erase bindings of the base before iterating (Figure 4 uses only the
	// paths of the subpattern).
	erased := make([]Match, len(base))
	for i, m := range base {
		erased[i] = Match{Path: m.Path, Binding: map[string]graph.Object{}}
	}
	erased = dedup(erased)

	// ⟦π⟧⁰: single-node paths.
	level := make([]Match, 0, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		if err := opts.step(); err != nil {
			return nil, err
		}
		if !g.NodeAlive(i) {
			continue
		}
		level = append(level, Match{Path: gpath.OfNode(i), Binding: map[string]graph.Object{}})
	}
	var out []Match
	if n.Min == 0 {
		out = append(out, level...)
	}
	// seen tracks every path produced at any level; once a level introduces
	// nothing new, no later level can either (extensions depend only on the
	// path), so unbounded iteration may stop.
	seen := map[string]struct{}{}
	for _, m := range level {
		seen[m.key()] = struct{}{}
	}
	for j := 1; n.Max < 0 || j <= n.Max; j++ {
		joined, err := concatMatches(g, level, erased, opts)
		if err != nil {
			return nil, err
		}
		level = dedup(joined)
		if j >= n.Min {
			out = append(out, level...)
		}
		anyFresh := false
		for _, m := range level {
			k := m.key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				anyFresh = true
			}
		}
		if n.Max < 0 && !anyFresh {
			break // fixpoint under the MaxLen bound
		}
		if len(level) == 0 {
			break
		}
	}
	return dedup(out), nil
}

// Output computes the pattern-with-output relation ⟦π_Ω⟧_G of Section
// 4.1.2. Ω items are either a bare variable "x" (the bound element) or
// "x.k" (a property of the bound element); matches where some item is
// undefined are dropped (no nulls).
func Output(g *graph.Graph, p Pattern, omega []string, opts Options) (*relalg.Relation, error) {
	ms, err := EvalPattern(g, p, opts)
	if err != nil {
		return nil, err
	}
	rel, err := relalg.NewRelation(omega...)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		t := make([]relalg.Cell, len(omega))
		ok := true
		for i, item := range omega {
			varName, prop := splitOmega(item)
			o, bound := m.Binding[varName]
			if !bound {
				ok = false
				break
			}
			if prop == "" {
				if o.IsEdge() {
					t[i] = relalg.EdgeCell(o.Index())
				} else {
					t[i] = relalg.NodeCell(o.Index())
				}
				continue
			}
			v, defined := g.Prop(o, prop)
			if !defined {
				ok = false
				break
			}
			t[i] = relalg.ValueCell(v)
		}
		if !ok {
			continue // µ not compatible with Ω
		}
		if err := rel.Add(t...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func splitOmega(item string) (varName, prop string) {
	for i := 0; i < len(item); i++ {
		if item[i] == '.' {
			return item[:i], item[i+1:]
		}
	}
	return item, ""
}
