package coregql

import (
	"fmt"

	"graphquery/internal/graph"
)

// Condition is a CoreGQL condition θ (Section 4.1.1):
//
//	θ := x.k op x'.k' | x.k op c | ℓ(x) | θ ∨ θ' | θ ∧ θ' | ¬θ
//
// (the paper's grammar has = and <; the remaining comparisons are
// definable and provided directly).
type Condition interface {
	fmt.Stringer
	// Holds evaluates µ ⊨ θ per Figure 4. Comparisons involving an
	// undefined property are false.
	Holds(g *graph.Graph, binding map[string]graph.Object) bool
	isCondition()
}

// PropCmp is x.K op y.K2 or, with UseConst, x.K op Const.
type PropCmp struct {
	X  string
	K  string
	Op graph.CompareOp

	Y  string
	K2 string

	UseConst bool
	Const    graph.Value
}

// Cmp returns the condition x.k op y.k2.
func Cmp(x, k string, op graph.CompareOp, y, k2 string) Condition {
	return PropCmp{X: x, K: k, Op: op, Y: y, K2: k2}
}

// CmpConst returns the condition x.k op c.
func CmpConst(x, k string, op graph.CompareOp, c graph.Value) Condition {
	return PropCmp{X: x, K: k, Op: op, UseConst: true, Const: c}
}

// LabelIs is ℓ(x): the element bound to x has label ℓ.
type LabelIs struct {
	X     string
	Label string
}

// HasLabel returns the condition ℓ(x).
func HasLabel(x, label string) Condition { return LabelIs{X: x, Label: label} }

// And is θ ∧ θ'.
type And struct{ L, R Condition }

// Or is θ ∨ θ'.
type Or struct{ L, R Condition }

// Not is ¬θ.
type Not struct{ Sub Condition }

func (PropCmp) isCondition() {}
func (LabelIs) isCondition() {}
func (And) isCondition()     {}
func (Or) isCondition()      {}
func (Not) isCondition()     {}

func (c PropCmp) String() string {
	if c.UseConst {
		rhs := c.Const.String()
		if c.Const.Kind() == graph.KindString {
			rhs = "'" + rhs + "'"
		}
		return fmt.Sprintf("%s.%s %s %s", c.X, c.K, c.Op, rhs)
	}
	return fmt.Sprintf("%s.%s %s %s.%s", c.X, c.K, c.Op, c.Y, c.K2)
}

func (c LabelIs) String() string { return fmt.Sprintf("%s(%s)", c.Label, c.X) }
func (c And) String() string     { return "(" + c.L.String() + " AND " + c.R.String() + ")" }
func (c Or) String() string      { return "(" + c.L.String() + " OR " + c.R.String() + ")" }
func (c Not) String() string     { return "NOT " + c.Sub.String() }

// Holds implements Condition.
func (c PropCmp) Holds(g *graph.Graph, b map[string]graph.Object) bool {
	ox, ok := b[c.X]
	if !ok {
		return false
	}
	lv, defined := g.Prop(ox, c.K)
	if !defined {
		return false
	}
	var rv graph.Value
	if c.UseConst {
		rv = c.Const
	} else {
		oy, ok := b[c.Y]
		if !ok {
			return false
		}
		rv, defined = g.Prop(oy, c.K2)
		if !defined {
			return false
		}
	}
	return c.Op.Apply(lv, rv)
}

// Holds implements Condition.
func (c LabelIs) Holds(g *graph.Graph, b map[string]graph.Object) bool {
	o, ok := b[c.X]
	if !ok {
		return false
	}
	return g.Label(o) == c.Label
}

// Holds implements Condition.
func (c And) Holds(g *graph.Graph, b map[string]graph.Object) bool {
	return c.L.Holds(g, b) && c.R.Holds(g, b)
}

// Holds implements Condition.
func (c Or) Holds(g *graph.Graph, b map[string]graph.Object) bool {
	return c.L.Holds(g, b) || c.R.Holds(g, b)
}

// Holds implements Condition.
func (c Not) Holds(g *graph.Graph, b map[string]graph.Object) bool {
	return !c.Sub.Holds(g, b)
}

// condVars returns the variables mentioned by a condition.
func condVars(c Condition) []string {
	switch n := c.(type) {
	case PropCmp:
		if n.UseConst {
			return []string{n.X}
		}
		return []string{n.X, n.Y}
	case LabelIs:
		return []string{n.X}
	case And:
		return append(condVars(n.L), condVars(n.R)...)
	case Or:
		return append(condVars(n.L), condVars(n.R)...)
	case Not:
		return condVars(n.Sub)
	default:
		return nil
	}
}
