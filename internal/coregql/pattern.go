// Package coregql implements CoreGQL (Section 4.1 of the paper): the
// distilled-from-practice abstraction of GQL consisting of (1) a pattern
// calculus, (2) pattern outputs as first-normal-form relations, and (3)
// relational algebra over those relations (package relalg).
//
// Patterns follow the grammar of Section 4.1.1:
//
//	π := (x) | -x-> | π₁ π₂ | π₁ + π₂ | π^{n..m} | π⟨θ⟩
//
// with conditions θ over property comparisons, label tests, and Boolean
// connectives. The semantics is exactly Figure 4: patterns produce pairs of
// a (node-to-node) path and a binding of free variables to graph elements;
// repetition erases free variables (FV(π^{n..m}) = ∅), which is the
// normal-form discipline that keeps outputs flat — and the root cause of
// the Example 1 phenomenon that π^{2..2} ≢ ππ when π contains variables.
package coregql

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/gpath"
	"graphquery/internal/graph"
)

// Pattern is a CoreGQL pattern π.
type Pattern interface {
	fmt.Stringer
	isPattern()
}

// NodePat is (x); the variable is optional ("" for anonymous).
type NodePat struct{ Var string }

// EdgePat is -x->; the variable is optional.
type EdgePat struct{ Var string }

// ConcatPat is π₁ π₂ (node-to-node composition with a join on compatible
// bindings).
type ConcatPat struct{ Left, Right Pattern }

// UnionPat is π₁ + π₂; both sides must have the same free variables
// (CoreGQL's no-nulls discipline).
type UnionPat struct{ Left, Right Pattern }

// RepeatPat is π^{Min..Max}; Max < 0 means ∞.
type RepeatPat struct {
	Sub Pattern
	Min int
	Max int
}

// CondPat is π⟨θ⟩.
type CondPat struct {
	Sub  Pattern
	Cond Condition
}

func (NodePat) isPattern()   {}
func (EdgePat) isPattern()   {}
func (ConcatPat) isPattern() {}
func (UnionPat) isPattern()  {}
func (RepeatPat) isPattern() {}
func (CondPat) isPattern()   {}

func (p NodePat) String() string { return "(" + p.Var + ")" }
func (p EdgePat) String() string {
	if p.Var == "" {
		return "-->"
	}
	return "-" + p.Var + "->"
}
func (p ConcatPat) String() string { return p.Left.String() + " " + p.Right.String() }
func (p UnionPat) String() string  { return "(" + p.Left.String() + " + " + p.Right.String() + ")" }
func (p RepeatPat) String() string {
	switch {
	case p.Min == 0 && p.Max < 0:
		return "(" + p.Sub.String() + ")*"
	case p.Max < 0:
		return fmt.Sprintf("(%s){%d..inf}", p.Sub, p.Min)
	default:
		return fmt.Sprintf("(%s){%d..%d}", p.Sub, p.Min, p.Max)
	}
}
func (p CondPat) String() string { return "(" + p.Sub.String() + ")<" + p.Cond.String() + ">" }

// Node returns the node pattern (x).
func Node(x string) Pattern { return NodePat{Var: x} }

// AnonNode returns ().
func AnonNode() Pattern { return NodePat{} }

// Edge returns -x->.
func Edge(x string) Pattern { return EdgePat{Var: x} }

// AnonEdge returns -->.
func AnonEdge() Pattern { return EdgePat{} }

// Concat chains patterns left to right.
func Concat(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("coregql: Concat needs at least one pattern")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = ConcatPat{Left: out, Right: p}
	}
	return out
}

// Union returns π₁ + π₂.
func Union(a, b Pattern) Pattern { return UnionPat{Left: a, Right: b} }

// Repeat returns π^{min..max}; max < 0 means ∞.
func Repeat(p Pattern, min, max int) Pattern { return RepeatPat{Sub: p, Min: min, Max: max} }

// Star returns π^{0..∞}.
func Star(p Pattern) Pattern { return RepeatPat{Sub: p, Min: 0, Max: -1} }

// Filter returns π⟨θ⟩.
func Filter(p Pattern, c Condition) Pattern { return CondPat{Sub: p, Cond: c} }

// FreeVars computes FV(π) per Section 4.1.1: repetition erases variables,
// union requires both sides to agree (checked by Validate).
func FreeVars(p Pattern) []string {
	set := map[string]struct{}{}
	collectFV(p, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFV(p Pattern, set map[string]struct{}) {
	switch n := p.(type) {
	case NodePat:
		if n.Var != "" {
			set[n.Var] = struct{}{}
		}
	case EdgePat:
		if n.Var != "" {
			set[n.Var] = struct{}{}
		}
	case ConcatPat:
		collectFV(n.Left, set)
		collectFV(n.Right, set)
	case UnionPat:
		collectFV(n.Left, set) // FV(π₁+π₂) = FV(π₁) (= FV(π₂))
	case RepeatPat:
		// FV(π^{n..m}) = ∅: repetition erases variables.
	case CondPat:
		collectFV(n.Sub, set)
	}
}

// Validate checks the well-formedness constraints: in every union both
// sides have identical free variables, repetition bounds are sane, and
// conditions only mention variables free in their subpattern.
func Validate(p Pattern) error {
	switch n := p.(type) {
	case NodePat, EdgePat:
		return nil
	case ConcatPat:
		if err := Validate(n.Left); err != nil {
			return err
		}
		return Validate(n.Right)
	case UnionPat:
		if err := Validate(n.Left); err != nil {
			return err
		}
		if err := Validate(n.Right); err != nil {
			return err
		}
		l, r := FreeVars(n.Left), FreeVars(n.Right)
		if strings.Join(l, ",") != strings.Join(r, ",") {
			return fmt.Errorf("coregql: union branches have different free variables %v vs %v (nulls are not allowed)", l, r)
		}
		return nil
	case RepeatPat:
		if n.Min < 0 || (n.Max >= 0 && n.Max < n.Min) {
			return fmt.Errorf("coregql: invalid repetition bounds {%d..%d}", n.Min, n.Max)
		}
		return Validate(n.Sub)
	case CondPat:
		if err := Validate(n.Sub); err != nil {
			return err
		}
		fv := map[string]struct{}{}
		for _, v := range FreeVars(n.Sub) {
			fv[v] = struct{}{}
		}
		for _, v := range condVars(n.Cond) {
			if _, ok := fv[v]; !ok {
				return fmt.Errorf("coregql: condition mentions %q, which is not free in the subpattern", v)
			}
		}
		return nil
	default:
		return fmt.Errorf("coregql: unknown pattern %T", p)
	}
}

// Match is one element of ⟦π⟧_G: a node-to-node path and a binding of free
// variables to graph elements.
type Match struct {
	Path    gpath.Path
	Binding map[string]graph.Object
}

func bindingKey(b map[string]graph.Object) string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var sb strings.Builder
	for _, v := range vars {
		o := b[v]
		if o.IsEdge() {
			fmt.Fprintf(&sb, "%s=E%d;", v, o.Index())
		} else {
			fmt.Fprintf(&sb, "%s=N%d;", v, o.Index())
		}
	}
	return sb.String()
}

func (m Match) key() string { return m.Path.Key() + "|" + bindingKey(m.Binding) }

// compatible reports µ₁ ~ µ₂ and returns µ₁ ⋈ µ₂.
func joinBindings(a, b map[string]graph.Object) (map[string]graph.Object, bool) {
	for v, o := range a {
		if o2, shared := b[v]; shared && o != o2 {
			return nil, false
		}
	}
	out := make(map[string]graph.Object, len(a)+len(b))
	for v, o := range a {
		out[v] = o
	}
	for v, o := range b {
		out[v] = o
	}
	return out, true
}
