package pg

import "testing"

func TestBitsetSetTestReset(t *testing.T) {
	b := newBitset(300)
	for _, i := range []int{0, 1, 63, 64, 127, 299} {
		if b.test(i) {
			t.Fatalf("bit %d set before testSet", i)
		}
		if !b.testSet(i) {
			t.Fatalf("testSet(%d) on a clear bit reported already-set", i)
		}
		if b.testSet(i) {
			t.Fatalf("testSet(%d) on a set bit reported newly-set", i)
		}
		if !b.test(i) {
			t.Fatalf("bit %d clear after testSet", i)
		}
	}
	// 0, 1, 63 share word 0 and 64, 127 share word 1; the touched list
	// must not duplicate either.
	if len(b.touched) != 3 {
		t.Fatalf("touched words = %d, want 3 (words 0, 1, 4)", len(b.touched))
	}
	b.reset()
	for _, w := range b.words {
		if w != 0 {
			t.Fatalf("nonzero word after reset")
		}
	}
	if len(b.touched) != 0 {
		t.Fatalf("touched list not cleared by reset")
	}
	// The bitset must be fully reusable after reset.
	if !b.testSet(64) || b.test(63) {
		t.Fatalf("bitset not reusable after reset")
	}
}

func TestTestBitRawWords(t *testing.T) {
	b := newBitset(200)
	b.testSet(77)
	if !testBit(b.words, 77) || testBit(b.words, 78) {
		t.Fatalf("testBit disagrees with bitset state")
	}
}
