package pg

import "sync"

// SweepStats is the analyze-mode telemetry sink of one query: when a
// request asks for EXPLAIN ANALYZE, the serving layer mints a meter
// carrying one of these (NewMeterAnalyze), and the kernel records what its
// sweeps actually did — states, edges, peak frontier, scan strategy, and,
// for the frontier engine, a per-level breakdown of the direction switch
// plus per-shard and outbox volumes. Recording happens only at sweep exits
// and level barriers, where the engines already aggregate their counters,
// so the hot loops gain no new branches; an analyze-off query carries a nil
// sink and pays only the nil checks at those sites.
//
// All aggregates are order-independent (sums and counts keyed by level
// index, maxima), so concurrent sweeps of a parallel fan-out produce the
// same Snapshot regardless of goroutine scheduling — the property the
// analyze determinism tests pin.
type SweepStats struct {
	mu             sync.Mutex
	scalarSweeps   int64
	frontierSweeps int64
	denseSweeps    int64
	indexedSweeps  int64
	states         int64
	edges          int64
	peakFrontier   int64
	outboxStates   int64
	shardStates    []int64
	levels         []levelAgg
}

// levelAgg accumulates one BFS depth across every sweep of the query.
type levelAgg struct {
	sweeps     int64
	frontier   int64
	discovered int64
	edges      int64
	bottomUp   int64
	topDown    int64
	unvisited  int64
}

// RecordScalar folds one scalar-loop sweep's exit accounting into the
// stats. dense names the scan strategy the sweep ran.
func (ss *SweepStats) RecordScalar(states, edges, peak int64, dense bool) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	ss.scalarSweeps++
	ss.recordCommon(states, edges, peak, dense)
	ss.mu.Unlock()
}

// RecordFrontierSweep folds one frontier-engine sweep's exit accounting
// into the stats.
func (ss *SweepStats) RecordFrontierSweep(states, edges, peak int64, dense bool) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	ss.frontierSweeps++
	ss.recordCommon(states, edges, peak, dense)
	ss.mu.Unlock()
}

func (ss *SweepStats) recordCommon(states, edges, peak int64, dense bool) {
	if dense {
		ss.denseSweeps++
	} else {
		ss.indexedSweeps++
	}
	ss.states += states
	ss.edges += edges
	if peak > ss.peakFrontier {
		ss.peakFrontier = peak
	}
}

// RecordLevel folds one frontier-engine level barrier into the per-depth
// aggregates: the frontier that entered the level, the direction it ran
// (chosen by the Beamer-style switch before the level), the adjacency
// entries it examined, the states it discovered, and the unvisited mass
// remaining afterwards — discovered and unvisited being exactly the alpha
// inputs of the next level's direction decision.
func (ss *SweepStats) RecordLevel(level int, frontier, discovered, edges, unvisited int64, bottomUp bool) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	for len(ss.levels) <= level {
		ss.levels = append(ss.levels, levelAgg{})
	}
	la := &ss.levels[level]
	la.sweeps++
	la.frontier += frontier
	la.discovered += discovered
	la.edges += edges
	la.unvisited += unvisited
	if bottomUp {
		la.bottomUp++
	} else {
		la.topDown++
	}
	ss.mu.Unlock()
}

// RecordShardStates folds shard s's discoveries for one level into its
// running total; the per-shard vector shows how evenly the hash partition
// spread the product.
func (ss *SweepStats) RecordShardStates(shard int, states int64) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	for len(ss.shardStates) <= shard {
		ss.shardStates = append(ss.shardStates, 0)
	}
	ss.shardStates[shard] += states
	ss.mu.Unlock()
}

// RecordOutbox folds one level exchange's shipped state count (global
// product ids moved between shards) into the total.
func (ss *SweepStats) RecordOutbox(states int64) {
	if ss == nil || states == 0 {
		return
	}
	ss.mu.Lock()
	ss.outboxStates += states
	ss.mu.Unlock()
}

// SweepLevel is one BFS depth of SweepStatsSnapshot: sums over every sweep
// of the query that reached this depth.
type SweepLevel struct {
	// Level is the BFS depth (0 expands the seed frontier).
	Level int `json:"level"`
	// Sweeps counts the sweeps that expanded a frontier at this depth.
	Sweeps int64 `json:"sweeps"`
	// Frontier is the total states entering this depth across sweeps.
	Frontier int64 `json:"frontier"`
	// Discovered is the total states first reached at this depth; together
	// with Unvisited it is the input of the next depth's direction switch
	// (bottom-up when alpha·discovered > unvisited).
	Discovered int64 `json:"discovered"`
	// Edges is the adjacency entries examined at this depth.
	Edges int64 `json:"edges"`
	// BottomUp / TopDown count the sweeps that ran this depth in each
	// direction.
	BottomUp int64 `json:"bottom_up"`
	TopDown  int64 `json:"top_down"`
	// Unvisited is the total product states still undiscovered after this
	// depth, summed across sweeps.
	Unvisited int64 `json:"unvisited"`
}

// SweepStatsSnapshot is the JSON face of SweepStats: what the annotated
// plan tree carries. It holds only deterministic fields — counts, sums,
// and maxima, never wall-clock — so identical runs render identical bytes.
type SweepStatsSnapshot struct {
	// ScalarSweeps / FrontierSweeps count sweeps by engine; DenseSweeps /
	// IndexedSweeps count them by scan strategy.
	ScalarSweeps   int64 `json:"scalar_sweeps"`
	FrontierSweeps int64 `json:"frontier_sweeps"`
	DenseSweeps    int64 `json:"dense_sweeps"`
	IndexedSweeps  int64 `json:"indexed_sweeps"`
	// States / Edges are total product states expanded and adjacency
	// entries examined; PeakFrontier is the largest single-level frontier
	// (cross-shard sum) any sweep reached.
	States       int64 `json:"states"`
	Edges        int64 `json:"edges"`
	PeakFrontier int64 `json:"peak_frontier"`
	// Alpha is the direction-switch threshold the engine ran with, echoed
	// so level rows can be audited: a level runs bottom-up when
	// alpha·discovered > unvisited held at the previous barrier.
	Alpha int64 `json:"alpha,omitempty"`
	// Levels is the per-depth breakdown of frontier-engine sweeps.
	Levels []SweepLevel `json:"levels,omitempty"`
	// ShardStates[s] is the states discovered by shard s across sharded
	// sweeps; OutboxStates is the total states shipped between shards at
	// level exchanges.
	ShardStates  []int64 `json:"shard_states,omitempty"`
	OutboxStates int64   `json:"outbox_states,omitempty"`
}

// Snapshot renders the accumulated telemetry. A nil receiver yields nil.
func (ss *SweepStats) Snapshot() *SweepStatsSnapshot {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	snap := &SweepStatsSnapshot{
		ScalarSweeps:   ss.scalarSweeps,
		FrontierSweeps: ss.frontierSweeps,
		DenseSweeps:    ss.denseSweeps,
		IndexedSweeps:  ss.indexedSweeps,
		States:         ss.states,
		Edges:          ss.edges,
		PeakFrontier:   ss.peakFrontier,
		OutboxStates:   ss.outboxStates,
	}
	if ss.frontierSweeps > 0 {
		snap.Alpha = frontierAlpha
	}
	for i, la := range ss.levels {
		snap.Levels = append(snap.Levels, SweepLevel{
			Level:      i,
			Sweeps:     la.sweeps,
			Frontier:   la.frontier,
			Discovered: la.discovered,
			Edges:      la.edges,
			BottomUp:   la.bottomUp,
			TopDown:    la.topDown,
			Unvisited:  la.unvisited,
		})
	}
	if len(ss.shardStates) > 0 {
		snap.ShardStates = append([]int64(nil), ss.shardStates...)
	}
	return snap
}
