package plan_test

import (
	"fmt"
	"reflect"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/pg/plan"
	"graphquery/internal/rpq"
)

// skewed builds a graph with many a-edges (a long cycle plus chords) and a
// single b-edge, so queries ending in b are far cheaper to run backward.
func skewed() *graph.Graph {
	b := graph.NewBuilder()
	const n = 40
	id := func(i int) graph.NodeID { return graph.NodeID(fmt.Sprintf("v%d", i)) }
	for i := 0; i < n; i++ {
		b.AddNode(id(i), "", nil)
	}
	e := 0
	add := func(lab string, s, t int) {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", e)), lab, id(s), id(t), nil)
		e++
	}
	for i := 0; i < n; i++ {
		add("a", i, (i+1)%n)
		add("a", i, (i+7)%n)
		add("a", i, (i+13)%n)
	}
	add("b", 0, 1)
	return b.MustBuild()
}

func compile(t *testing.T, q string) (rpq.Expr, *plan.Planner, pg.Plan) {
	t.Helper()
	return compileOn(t, skewed(), q)
}

func compileOn(t *testing.T, g *graph.Graph, q string) (rpq.Expr, *plan.Planner, pg.Plan) {
	t.Helper()
	expr, err := rpq.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p := plan.New(g)
	return expr, p, p.ForNFA(rpq.Compile(expr), 1, 0)
}

func TestPlannerPicksBackwardForSelectiveSuffix(t *testing.T) {
	_, _, pl := compile(t, "a* b")
	if !pl.Backward {
		t.Fatalf("a* b over a-heavy graph should run backward, got %s", pl)
	}
}

func TestPlannerKeepsForwardForSelectivePrefix(t *testing.T) {
	_, _, pl := compile(t, "b a*")
	if pl.Backward {
		t.Fatalf("b a* over a-heavy graph should run forward, got %s", pl)
	}
}

func TestPlannerScanStrategy(t *testing.T) {
	// Positive guards keep the per-label index — even when a guard matches
	// every edge, the index visits the same edges with no per-edge test
	// (BenchmarkKernelScan).
	_, _, pl := compileOn(t, gen.Clique(8, "a"), "a a*")
	if pl.Dense {
		t.Fatalf("positive guards should use the label index, got %s", pl)
	}
	// An all-co-finite automaton runs on dense lists regardless; the plan
	// records that.
	_, _, pl = compileOn(t, gen.Random(50, 200, []string{"a", "b", "c"}, 7), "(!{a})*")
	if !pl.Dense {
		t.Fatalf("all-co-finite guards scan densely, got %s", pl)
	}
}

func TestPlannerParallelismDegree(t *testing.T) {
	// Tiny graph: the estimated work cannot amortize a worker pool.
	expr, err := rpq.Parse("a*")
	if err != nil {
		t.Fatal(err)
	}
	small := plan.New(gen.APath(4, "a")).ForNFA(rpq.Compile(expr), 8, 0)
	if small.Workers != 1 {
		t.Fatalf("tiny graph should stay sequential, got %s", small)
	}
	big := plan.New(gen.Random(2000, 8000, []string{"a"}, 3)).ForNFA(rpq.Compile(expr), 8, 0)
	if big.Workers != 8 {
		t.Fatalf("large estimate should use the full worker cap, got %s", big)
	}
}

// TestPlannedEvaluationMatchesDefault: whatever the planner chooses, the
// answer set is byte-identical to the historical forward-indexed path.
func TestPlannedEvaluationMatchesDefault(t *testing.T) {
	queries := []string{"a", "a* b", "b a*", "(a | b)+", "!{b} a*"}
	graphs := []*graph.Graph{
		skewed(),
		gen.Random(30, 120, []string{"a", "b"}, 11),
		gen.Clique(6, "a"),
	}
	for gi, g := range graphs {
		p := plan.New(g)
		for _, q := range queries {
			expr, err := rpq.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			nfa := rpq.Compile(expr)
			prod := eval.NewProduct(g, nfa)
			want := eval.PairsProduct(prod, eval.Options{})
			got := eval.PairsProduct(prod, eval.Options{Plan: p.ForNFA(nfa, 4, 0)})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("graph %d query %q plan %s: %v != default %v",
					gi, q, p.ForNFA(nfa, 4, 0), got, want)
			}
		}
	}
}

func TestPlannerEmptyGraph(t *testing.T) {
	expr, err := rpq.Parse("a*")
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.New(graph.NewBuilder().MustBuild()).ForNFA(rpq.Compile(expr), 8, 0)
	if pl != (pg.Plan{}) {
		t.Fatalf("empty graph should plan the zero plan, got %s", pl)
	}
}
