package plan

import (
	"graphquery/internal/cardest"
	"graphquery/internal/pg"
)

// mispickQErrorCut is the estimate-vs-actual q-error above which a plan's
// cost-model inputs are considered bad enough to have corrupted the knob
// choices derived from them. 32 is two binary orders past the coarsest
// threshold gap in the model (the dense-vs-indexed frontier cuts differ by
// 2^14), so estimates inside the cut could not have flipped a knob.
const mispickQErrorCut = 32

// Mispicks audits one executed plan against its measured actuals and
// returns the knobs whose choice the evidence contradicts — the vocabulary
// of the gq_plan_mispick_total metric family: "direction" (the cost
// model's state estimate was off by ≥ mispickQErrorCut×, so the
// forward/backward choice rested on bad data), "scan" (a dense plan spent
// almost all its edge examinations on states it never discovered, where
// the per-label index would have skipped them), "frontier" (the sweep ran
// on the frontier engine below the cheapest cut-over, or stayed scalar
// above the indexed one), and "shards" (a sharded sweep too light to
// amortize its level barriers). states and edges are the query's measured
// product states expanded and adjacency entries examined.
//
// These are coarse audit heuristics, not proofs: they compare the actuals
// against the same thresholds the planner decided with, which is exactly
// what an estimate-vs-actual feedback loop can see. An empty result means
// the evidence is consistent with every choice, not that each was optimal.
func Mispicks(pl pg.Plan, states, edges int64) []string {
	var out []string
	if pl.EstStates > 0 && cardest.QError(int(states), pl.EstStates) >= mispickQErrorCut {
		out = append(out, "direction")
	}
	if pl.Dense && states > 0 && edges > 32*states {
		out = append(out, "scan")
	}
	if (pl.Frontier && states < denseFrontierThreshold) ||
		(!pl.Frontier && states >= frontierThreshold) {
		out = append(out, "frontier")
	}
	if pl.Shards > 1 && states < shardFrontierThreshold {
		out = append(out, "shards")
	}
	return out
}
