// Package plan is the cost-based planner of the unified product-graph
// runtime: given a compiled automaton and the graph's cardinality
// statistics (internal/cardest), it chooses how the kernel should run the
// query — evaluation direction (forward from sources vs. backward from
// targets over the reversed automaton), scan strategy (per-label index
// vs. dense adjacency), and parallelism degree. Every choice changes only
// how the answer set is computed, never the answer set itself, so a bad
// estimate costs time, not correctness.
package plan

import (
	"math"

	"graphquery/internal/automata"
	"graphquery/internal/cardest"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
)

// Tuning constants of the cost model. They only shift the break-even
// points between equivalent strategies.
const (
	// backwardMargin is how much cheaper the reversed sweep must look
	// before the planner abandons the forward default (the margin absorbs
	// estimation noise and the backward path's final re-sort).
	backwardMargin = 0.7
	// parallelThreshold is the minimum estimated total product states
	// (across all sources) before the fan-out is worth more than one
	// worker.
	parallelThreshold = 1 << 15
	// frontierThreshold is the minimum estimated total product states
	// before indexed-scan sweeps route through the level-synchronous
	// frontier engine: per-label index probes already skip non-matching
	// edges, so the engine's bitsets and direction switching only beat the
	// scalar loop's inlined visit on very heavy sweeps.
	frontierThreshold = 1 << 26
	// denseFrontierThreshold is the (lower) frontier cut-over for dense
	// plans: co-finite guards scan full adjacency per state, so the
	// engine's per-label match tables and bottom-up early exit pay off far
	// sooner than on indexed scans.
	denseFrontierThreshold = 1 << 12
	// shardFrontierThreshold is the minimum estimate before an engine-level
	// shards knob actually shards the sweep — tiny sweeps would spend more
	// on level barriers than on expansion.
	shardFrontierThreshold = 1 << 12
)

// Planner chooses kernel plans for queries over one graph. It is
// immutable after New and safe for concurrent use.
type Planner struct {
	g     *graph.Graph
	stats *cardest.Stats
}

// New collects statistics over g and returns its planner.
func New(g *graph.Graph) *Planner {
	return &Planner{g: g, stats: cardest.Collect(g)}
}

// Stats exposes the collected per-label statistics.
func (p *Planner) Stats() *cardest.Stats { return p.stats }

// ForNFA plans the all-pairs evaluation of a compiled RPQ automaton.
// parallelism is the caller's worker cap (0 = one per CPU); the planner
// may lower it to 1 when the estimated work cannot amortize the pool.
// shards is the engine's kernel-sharding knob: with shards > 1 and enough
// estimated work, sweeps run sharded on the frontier engine with the
// per-source fan-out lowered to one worker (the shards are the
// parallelism, and two pools would oversubscribe the machine).
func (p *Planner) ForNFA(a *automata.NFA, parallelism, shards int) pg.Plan {
	n := p.stats.Nodes
	if n == 0 || a.NumStates == 0 {
		return pg.Plan{}
	}
	pl := pg.Plan{}
	if bwd, fwd := p.firstStepMass(a, true), p.firstStepMass(a, false); bwd < backwardMargin*fwd {
		pl.Backward = true
	}
	pl.EstStates = p.sweepCost(a, pl.Backward) * float64(n)
	pl.Dense = p.denseWins(a)
	pl.Workers = 1
	if pl.EstStates >= parallelThreshold {
		pl.Workers = pg.Workers(parallelism)
	}
	cut := float64(frontierThreshold)
	if pl.Dense {
		cut = denseFrontierThreshold
	}
	if shards > 1 && pl.EstStates >= shardFrontierThreshold {
		pl.Frontier = true
		pl.Shards = shards
		pl.Workers = 1
	} else if pl.EstStates >= cut {
		pl.Frontier = true
	}
	return pl
}

// guardEdges estimates the number of graph edges matching a guard from
// the per-label counts (mirroring cardest's internal estimate).
func (p *Planner) guardEdges(gd automata.Guard) float64 {
	if !gd.Negated {
		n := 0
		for _, l := range gd.Labels {
			n += p.stats.EdgeCount[l]
		}
		return float64(n)
	}
	n := p.stats.TotalEdges
	for _, l := range gd.Labels {
		n -= p.stats.EdgeCount[l]
	}
	if n < 0 {
		n = 0
	}
	return float64(n)
}

// firstStepMass estimates the expected frontier arrivals of a sweep's
// first kernel step — the per-node fan-out of the transitions leaving the
// start states (forward) or entering the accepting states (backward).
// Seed selectivity dominates the direction choice: a sweep whose first
// guard matches nothing at its source dies after one state, so when a
// query's final labels are far more selective than its initial ones, the
// reversed automaton turns almost every per-node sweep into a no-op.
// Deeper propagation cannot see this asymmetry — expectations averaged
// over all sources saturate the same way in either direction.
func (p *Planner) firstStepMass(a *automata.NFA, backward bool) float64 {
	n := float64(p.stats.Nodes)
	mass := 0.0
	for q := 0; q < a.NumStates; q++ {
		for _, t := range a.Trans[q] {
			if backward {
				if a.Accept[t.To] {
					mass += p.guardEdges(t.Guard) / n
				}
			} else if q == a.Start {
				mass += p.guardEdges(t.Guard) / n
			}
		}
	}
	return mass
}

// sweepCost estimates the product states one single-source kernel sweep
// expands: expected per-state frontier mass is propagated through the
// automaton (reversed, for a backward sweep, and seeded from the
// accepting states) with per-step fan-out guardEdges/|N| under the
// independence assumptions of cardest, capped at |N| distinct nodes per
// state, for a horizon of about the graph's expected diameter.
func (p *Planner) sweepCost(a *automata.NFA, backward bool) float64 {
	n := float64(p.stats.Nodes)
	mass := make([]float64, a.NumStates)
	if backward {
		for q, acc := range a.Accept {
			if acc {
				mass[q] = 1
			}
		}
	} else {
		mass[a.Start] = 1
	}
	type edge struct {
		to  int
		fan float64
	}
	outs := make([][]edge, a.NumStates)
	for q := 0; q < a.NumStates; q++ {
		for _, t := range a.Trans[q] {
			fan := p.guardEdges(t.Guard) / n
			if backward {
				outs[t.To] = append(outs[t.To], edge{to: q, fan: fan})
			} else {
				outs[q] = append(outs[q], edge{to: t.To, fan: fan})
			}
		}
	}
	total := 0.0
	for _, m := range mass {
		total += m
	}
	for step := 0; step < horizon(p.stats.Nodes); step++ {
		next := make([]float64, a.NumStates)
		moved := false
		for q, m := range mass {
			if m <= 0 {
				continue
			}
			for _, e := range outs[q] {
				if c := m * e.fan; c > 0 {
					next[e.to] += c
					moved = true
				}
			}
		}
		if !moved {
			break
		}
		for q := range next {
			if next[q] > n {
				next[q] = n // at most |N| distinct nodes per state
			}
			total += next[q]
		}
		mass = next
	}
	return total
}

// denseWins reports whether the plan should scan dense adjacency. The
// per-label index never loses for a positive guard — it iterates a
// precomputed contiguous edge region with no per-edge test, while the
// dense scan pays a label lookup and compare on every edge
// (BenchmarkKernelScan measures the dense scan ~2x slower even on a
// single-label clique, the best possible case for it, where both
// strategies visit exactly the same edges). So the planner marks a plan
// dense only when every guard is co-finite: the kernel scans dense lists
// for those transitions regardless, and the plan then records what will
// actually run.
func (p *Planner) denseWins(a *automata.NFA) bool {
	seen := false
	for q := 0; q < a.NumStates; q++ {
		for _, t := range a.Trans[q] {
			if !t.Guard.Negated {
				return false
			}
			seen = true
		}
	}
	return seen
}

// horizon mirrors cardest's default Kleene-unrolling depth: about twice
// the log of the node count, floored at 4.
func horizon(nodes int) int {
	h := int(math.Ceil(2 * math.Log2(float64(nodes)+1)))
	if h < 4 {
		h = 4
	}
	return h
}
