package pg

import (
	mathbits "math/bits"
	"sort"
	"sync"

	"graphquery/internal/graph"
)

// This file is the frontier engine: the level-synchronous rebuild of the
// kernel's reachability sweep around three composable optimizations —
// word-packed bitset frontiers and visited sets (O(visited) clearing via
// touched-word lists), direction-optimizing top-down/bottom-up expansion
// à la Beamer (decided per level from frontier mass vs. unvisited mass,
// running the reverse transition relation over the reverse CSR the graph
// already maintains), and in-process sharding (product states partitioned
// by graph node into P per-shard frontier loops with batched cross-shard
// exchange at level barriers). Every combination computes the same node
// set as the scalar loop in kernel.go, and both paths sort that set
// ascending, so results are byte-identical — the crossval differential
// suite holds the engines to that.
//
// The scalar loop stays untouched: its visit() function must remain under
// the inlining budget (rows charging was once moved out of it for exactly
// that reason), so the planner routes heavy sweeps here instead of
// micro-optimizing there.

const (
	// frontierAlpha is the direction-switch threshold: a level expands
	// bottom-up when alpha·|frontier| exceeds the unvisited state count.
	// Beamer's heuristic compares edge masses; state counts are the cheap
	// proxy available without degree sums, and the constant errs toward
	// top-down (bottom-up only pays when most states are about to be
	// discovered anyway).
	frontierAlpha = 8
	// maxFrontierStates bounds the product size the frontier engine
	// accepts: local ids are int32 and cross-shard exchange ships global
	// ids as uint32, so anything larger falls back to the scalar loop.
	maxFrontierStates = 1<<31 - 1
	// bottomUpCheckMask amortizes cancellation polls over the bottom-up
	// scan, which examines many states that are never discovered (and so
	// never tick the meter): one poll every 4096 examined states.
	bottomUpCheckMask = 1<<12 - 1
	// negIndexCut: a negated guard admitting at most this many labels runs
	// on the label-indexed CSR instead of a dense scan. The ok table names
	// the admitted set at compile time, so a co-finite guard like !{b} over
	// a two-label graph becomes a plain indexed scan of the one admitted
	// label — no per-edge label load (a cache miss on large graphs) and no
	// wasted non-matching edges. Guards admitting many labels keep the
	// dense scan: per-label CSR lookups would cost more than one pass over
	// the adjacency list.
	negIndexCut = 4
)

// kTrans is one transition compiled for the frontier engine: the guard's
// per-label match table replaces the symbolic Guard.Matches on dense scans
// (an array load instead of a string binary search per edge). In the
// forward table `state` is the successor automaton state; in the reverse
// table it is the predecessor.
type kTrans struct {
	state  int
	back   bool
	neg    bool
	idx    bool   // always scan indexed, even under a dense plan
	labels []int  // admitted label IDs, for indexed scans
	ok     []bool // labelID → guard matches, for dense scans
	// adjs[i] is the compiled neighbor CSR for labels[i] in this table's
	// scan direction (nil when the graph is too large for int32 ids):
	// neighbor node ids directly, so the indexed hot loops do no binary
	// search, no per-edge label load, and no Edge-struct load.
	adjs []*labelAdj
}

// labelAdj is one label's adjacency compiled for the sweep engine:
// to[off[v]:off[v+1]] are v's neighbor nodes through that label (with
// multiplicity, ascending edge order) — the endpoint already resolved for
// the direction the table serves.
type labelAdj struct {
	off []int32
	to  []int32
}

// buildLabelAdj flattens one (label, direction) adjacency. rev=false walks
// outgoing edges to their targets, rev=true incoming edges to their
// sources. Returns nil when edge counts do not fit int32 (the engine then
// falls back to the CSR binary-search path).
func buildLabelAdj(g *graph.Graph, lid int, rev bool) *labelAdj {
	n := g.NumNodes()
	if int64(g.NumEdges()) >= int64(maxFrontierStates) {
		return nil
	}
	la := &labelAdj{off: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		la.off[v] = int32(total)
		if rev {
			total += len(g.InWithLabel(v, lid))
		} else {
			total += len(g.OutWithLabel(v, lid))
		}
	}
	la.off[n] = int32(total)
	la.to = make([]int32, total)
	i := 0
	for v := 0; v < n; v++ {
		if rev {
			for _, ei := range g.InWithLabel(v, lid) {
				la.to[i] = int32(g.EdgeSrc(ei))
				i++
			}
		} else {
			for _, ei := range g.OutWithLabel(v, lid) {
				la.to[i] = int32(g.EdgeTgt(ei))
				i++
			}
		}
	}
	return la
}

// buildSweepTables compiles the forward and reverse transition tables the
// frontier engine runs on. Called once per kernel, lazily: only sweeps
// planned onto the frontier engine pay for it.
func (k *Kernel) buildSweepTables() {
	nl := k.g.NumLabels()
	k.ft = make([][]kTrans, k.nq)
	k.rt = make([][]kTrans, k.nq)
	// Compiled adjacencies are shared across transitions reading the same
	// (label, direction); the forward table scans with the transition's
	// direction, the reverse table against it.
	adjCache := map[[2]int]*labelAdj{}
	adjFor := func(labels []int, rev bool) []*labelAdj {
		adjs := make([]*labelAdj, len(labels))
		for i, lid := range labels {
			key := [2]int{lid, 0}
			if rev {
				key[1] = 1
			}
			la, seen := adjCache[key]
			if !seen {
				la = buildLabelAdj(k.g, lid, rev)
				adjCache[key] = la
			}
			adjs[i] = la
		}
		return adjs
	}
	for q := 0; q < k.nq; q++ {
		for ti := range k.trans[q] {
			t := &k.trans[q][ti]
			ok := make([]bool, nl)
			for l := 0; l < nl; l++ {
				ok[l] = t.Guard.Matches(k.g.LabelName(l))
			}
			labels := t.LabelIDs
			if t.Negated {
				labels = nil
				for l := 0; l < nl; l++ {
					if ok[l] {
						labels = append(labels, l)
					}
				}
			}
			kt := kTrans{back: t.Back, neg: t.Negated, labels: labels, ok: ok}
			kt.idx = t.Negated && len(labels) <= negIndexCut
			kt.state = t.To
			if kt.idx || !kt.neg {
				// Wide negated guards only ever scan dense; building their
				// (possibly co-finite) adjacency tables would be pure waste.
				kt.adjs = adjFor(labels, t.Back)
			}
			k.ft[q] = append(k.ft[q], kt)
			kt.state = q
			if kt.idx || !kt.neg {
				kt.adjs = adjFor(labels, !t.Back)
			}
			k.rt[t.To] = append(k.rt[t.To], kt)
		}
	}
}

// Shard is one partition of a sharded sweep: it owns the product states of
// the graph nodes v with v mod P equal to its index, holding them in
// shard-local dense bitsets (local node v/P, local product id
// (v/P)·nq + q). The engine drives all shards level-synchronously through
// this interface; everything that crosses the boundary is a flat payload —
// seed ids, per-destination outboxes of global product ids, and frozen
// frontier bitmaps for bottom-up levels — so a later PR can put a Shard
// behind RPC without changing the driver.
type Shard interface {
	// Begin arms the shard for one sweep under a meter and scan strategy.
	Begin(mt *Meter, dense bool)
	// Seed absorbs start states owned by this shard (global product ids).
	Seed(ids []int)
	// ExpandTopDown scans the current frontier's outgoing transitions,
	// visiting local discoveries and queueing remote ones into
	// per-destination outboxes. Returns adjacency entries examined.
	ExpandTopDown() (edges int64, err error)
	// ExpandBottomUp scans this shard's unvisited states for a predecessor
	// in any shard's current frontier; peers[d] is shard d's frozen
	// frontier bitmap for the level (read-only until the next Promote, so
	// the concurrent reads need no locks). Discoveries stop at the first
	// frontier predecessor found.
	ExpandBottomUp(peers [][]uint64) (edges int64, err error)
	// TakeOutbox returns and clears the states this shard discovered for
	// shard dst. Each (src, dst) pair is taken exactly once per level, by
	// dst's absorber, so the exchange is race-free without locks.
	TakeOutbox(dst int) []uint32
	// AbsorbRemote folds remotely discovered states (global product ids)
	// into this shard's next frontier, deduplicating against visited.
	AbsorbRemote(ids []uint32)
	// NextLen returns the size of the next frontier accumulated so far.
	NextLen() int
	// Promote seals the level: the next frontier becomes current (building
	// the frontier bitmap when the coming level runs bottom-up) and its
	// size is returned.
	Promote(buildBits bool) int
	// FrontierBits returns the current frontier as a bitmap over local
	// product ids — valid only after a Promote(true).
	FrontierBits() []uint64
	// Emitted returns the graph nodes emitted so far (global, unsorted).
	Emitted() []int
	// Flush forces pending meter ticks out (the sub-interval tail).
	Flush() error
	// Reset clears all per-sweep state, keeping capacity for reuse.
	Reset()
}

// localShard is the in-process Shard: direct slices, no copies crossing
// the boundary.
type localShard struct {
	k    *Kernel
	s, p int // shard index, shard count
	nloc int // local node count: nodes v with v%p == s

	// Power-of-two shard counts replace the /p and %p on every routed
	// discovery and every bottom-up edge probe with a shift and a mask —
	// integer division by a runtime value is the single most expensive
	// instruction in those loops. pow2 is constant per sweep, so the branch
	// predicts perfectly.
	pow2  bool
	shift uint
	mask  int

	vis  bitset // visited, over local product ids
	emit bitset // emitted, over local node ids
	frb  bitset // current frontier bitmap, rebuilt by Promote(true)

	cur, next []int32    // frontier queues, local product ids
	out       [][]uint32 // per-destination outboxes, global product ids
	nodes     []int      // emitted graph nodes, global

	dense bool
	mt    *Meter
	pend  int64 // discoveries since the last meter flush
}

func newLocalShard(k *Kernel, s, p int) *localShard {
	nloc := (k.g.NumNodes() - s + p - 1) / p
	sh := &localShard{
		k: k, s: s, p: p, nloc: nloc,
		vis:  newBitset(nloc * k.nq),
		emit: newBitset(nloc),
		frb:  newBitset(nloc * k.nq),
		out:  make([][]uint32, p),
	}
	if p&(p-1) == 0 {
		sh.pow2 = true
		sh.shift = uint(mathbits.TrailingZeros(uint(p)))
		sh.mask = p - 1
	}
	return sh
}

// owner returns the shard index owning graph node u.
func (sh *localShard) owner(u int) int {
	if sh.pow2 {
		return u & sh.mask
	}
	return u % sh.p
}

// local returns node u's local index within its owning shard.
func (sh *localShard) local(u int) int {
	if sh.pow2 {
		return u >> sh.shift
	}
	return u / sh.p
}

func (sh *localShard) Begin(mt *Meter, dense bool) {
	sh.mt = mt
	sh.dense = dense
	sh.pend = 0
}

// visitLocal discovers product state (v, q), owned by this shard: mark
// visited, enqueue for the next level, emit v on first accepting hit.
func (sh *localShard) visitLocal(v, q int) {
	lv := sh.local(v)
	li := lv*sh.k.nq + q
	if !sh.vis.testSet(li) {
		return
	}
	sh.next = append(sh.next, int32(li))
	sh.pend++
	if sh.k.accept[q] && sh.emit.testSet(lv) {
		sh.nodes = append(sh.nodes, v)
	}
}

// route sends a discovered state to its owner: local states are visited in
// place, remote ones batched into the owner's outbox (deduplicated there,
// against the owner's visited set, at the level barrier).
func (sh *localShard) route(v, q int) {
	if d := sh.owner(v); d != sh.s {
		sh.out[d] = append(sh.out[d], uint32(v*sh.k.nq+q))
		return
	}
	sh.visitLocal(v, q)
}

func (sh *localShard) Seed(ids []int) {
	for _, id := range ids {
		sh.visitLocal(id/sh.k.nq, id%sh.k.nq)
	}
}

func (sh *localShard) ExpandTopDown() (int64, error) {
	k, g := sh.k, sh.k.g
	nq, p, s := k.nq, sh.p, sh.s
	var edges int64
	for _, li := range sh.cur {
		if sh.pend >= CheckInterval {
			if err := sh.Flush(); err != nil {
				return edges, err
			}
		}
		v := int(li)/nq*p + s
		q := int(li) % nq
		ft := k.ft[q]
		for ti := range ft {
			t := &ft[ti]
			if !t.idx && (t.neg || sh.dense) {
				adj := g.Out(v)
				if t.back {
					adj = g.In(v)
				}
				edges += int64(len(adj))
				for _, ei := range adj {
					if !t.ok[g.EdgeLabelID(ei)] {
						continue
					}
					if t.back {
						sh.route(g.EdgeSrc(ei), t.state)
					} else {
						sh.route(g.EdgeTgt(ei), t.state)
					}
				}
				continue
			}
			for li, lid := range t.labels {
				if la := t.adjs[li]; la != nil {
					tos := la.to[la.off[v]:la.off[v+1]]
					edges += int64(len(tos))
					for _, w := range tos {
						sh.route(int(w), t.state)
					}
					continue
				}
				adj := g.OutWithLabel(v, lid)
				if t.back {
					adj = g.InWithLabel(v, lid)
				}
				edges += int64(len(adj))
				for _, ei := range adj {
					if t.back {
						sh.route(g.EdgeSrc(ei), t.state)
					} else {
						sh.route(g.EdgeTgt(ei), t.state)
					}
				}
			}
		}
	}
	return edges, nil
}

// ExpandBottomUp iterates this shard's unvisited states word by word
// (skipping all-visited words wholesale) and, per state, scans its
// predecessor transitions for an edge from a state in the frozen level
// frontier — stopping at the first hit, which is the asymmetry that makes
// bottom-up cheap on the dense levels where nearly everything is about to
// be discovered.
func (sh *localShard) ExpandBottomUp(peers [][]uint64) (int64, error) {
	k, g := sh.k, sh.k.g
	nq, p, s := k.nq, sh.p, sh.s
	maxID := sh.nloc * nq
	var edges int64
	var examined int
	words := sh.vis.words
	for wi := range words {
		base := wi << 6
		if base >= maxID {
			break
		}
		rem := ^words[wi]
		if rem == 0 {
			continue
		}
		for rem != 0 {
			b := mathbits.TrailingZeros64(rem)
			rem &= rem - 1
			li := base + b
			if li >= maxID {
				break
			}
			// Re-check against the live word: a state discovered earlier in
			// this level (the snapshot `rem` predates it) stays discovered.
			if words[wi]&(uint64(1)<<uint(b)) != 0 {
				continue
			}
			if examined++; examined&bottomUpCheckMask == 0 {
				if err := sh.mt.Check(); err != nil {
					return edges, err
				}
			}
			q := li % nq
			rt := k.rt[q]
			if len(rt) == 0 {
				continue
			}
			v := li/nq*p + s
			found := false
			for ti := range rt {
				t := &rt[ti]
				if !t.idx && (t.neg || sh.dense) {
					adj := g.In(v)
					if t.back {
						adj = g.Out(v)
					}
					for _, ei := range adj {
						edges++
						if !t.ok[g.EdgeLabelID(ei)] {
							continue
						}
						u := g.EdgeSrc(ei)
						if t.back {
							u = g.EdgeTgt(ei)
						}
						if testBit(peers[sh.owner(u)], sh.local(u)*nq+t.state) {
							found = true
							break
						}
					}
				} else {
					for li, lid := range t.labels {
						if la := t.adjs[li]; la != nil {
							for _, u32 := range la.to[la.off[v]:la.off[v+1]] {
								edges++
								u := int(u32)
								if testBit(peers[sh.owner(u)], sh.local(u)*nq+t.state) {
									found = true
									break
								}
							}
						} else {
							adj := g.InWithLabel(v, lid)
							if t.back {
								adj = g.OutWithLabel(v, lid)
							}
							for _, ei := range adj {
								edges++
								u := g.EdgeSrc(ei)
								if t.back {
									u = g.EdgeTgt(ei)
								}
								if testBit(peers[sh.owner(u)], sh.local(u)*nq+t.state) {
									found = true
									break
								}
							}
						}
						if found {
							break
						}
					}
				}
				if found {
					break
				}
			}
			if found {
				sh.visitLocal(v, q)
				if sh.pend >= CheckInterval {
					if err := sh.Flush(); err != nil {
						return edges, err
					}
				}
			}
		}
	}
	return edges, nil
}

func (sh *localShard) TakeOutbox(dst int) []uint32 {
	ids := sh.out[dst]
	sh.out[dst] = sh.out[dst][:0]
	return ids
}

func (sh *localShard) AbsorbRemote(ids []uint32) {
	nq := sh.k.nq
	for _, id := range ids {
		sh.visitLocal(int(id)/nq, int(id)%nq)
	}
}

func (sh *localShard) NextLen() int { return len(sh.next) }

func (sh *localShard) Promote(buildBits bool) int {
	sh.cur, sh.next = sh.next, sh.cur[:0]
	if buildBits {
		sh.frb.reset()
		for _, li := range sh.cur {
			sh.frb.testSet(int(li))
		}
	}
	return len(sh.cur)
}

func (sh *localShard) FrontierBits() []uint64 { return sh.frb.words }

func (sh *localShard) Emitted() []int { return sh.nodes }

func (sh *localShard) Flush() error {
	n := sh.pend
	if n == 0 {
		return nil
	}
	sh.pend = 0
	return sh.mt.Tick(n)
}

func (sh *localShard) Reset() {
	sh.vis.reset()
	sh.emit.reset()
	sh.frb.reset()
	sh.cur = sh.cur[:0]
	sh.next = sh.next[:0]
	sh.nodes = sh.nodes[:0]
	for d := range sh.out {
		sh.out[d] = sh.out[d][:0]
	}
	sh.mt = nil
}

// frontierState is the per-scratch instance of the engine: the shard set
// for one shard count, reused sweep to sweep (warm sweeps allocate
// nothing).
type frontierState struct {
	p      int
	shards []Shard
	peers  [][]uint64
	seeds  []int
}

// frontierFor returns the scratch's shard set for k with p shards,
// building it on first use or when the shard count changes.
func (sc *Scratch) frontierFor(k *Kernel, p int) *frontierState {
	if sc.fr != nil && sc.fr.p == p {
		return sc.fr
	}
	fr := &frontierState{p: p, shards: make([]Shard, p), peers: make([][]uint64, p)}
	for s := 0; s < p; s++ {
		fr.shards[s] = newLocalShard(k, s, p)
	}
	sc.fr = fr
	return fr
}

// ReachableSweep is Reachable under a full kernel plan: scalar plans run
// the classic queue loop (byte-identical to ReachableRows), frontier plans
// run the level-synchronous engine — direction-optimizing and, with
// pl.Shards > 1, sharded. Rows are charged on mt at emission, as in
// ReachableRows. Products too large for the engine's 32-bit local ids fall
// back to the scalar loop.
func (k *Kernel) ReachableSweep(src int, sc *Scratch, mt *Meter, pl Plan) ([]int, error) {
	if !pl.Frontier || k.NumProductStates() > maxFrontierStates {
		return k.ReachableRows(src, sc, mt, pl.Dense)
	}
	sc.rows = mt
	defer func() { sc.rows = nil }()
	return k.reachableFrontier(src, sc, mt, pl)
}

// ReachableSweepSink is ReachableSweep with callback delivery, the plan-
// aware face of ReachableRowsSink: the sweep (scalar or frontier) runs to
// completion with emission-time rows charging, then the sorted node list is
// handed to sink one node at a time. A sink error aborts delivery and is
// returned verbatim.
func (k *Kernel) ReachableSweepSink(src int, sc *Scratch, mt *Meter, pl Plan, sink func(node int) error) error {
	nodes, err := k.ReachableSweep(src, sc, mt, pl)
	if err != nil {
		return err
	}
	for _, v := range nodes {
		if err := sink(v); err != nil {
			return err
		}
	}
	return nil
}

// reachableFrontier is the frontier engine's driver: seed, then alternate
// expand / exchange / promote level barriers until the frontier drains.
// Determinism: each shard's expansion order is fixed by its frontier queue
// order, outboxes are absorbed in source-shard order, and the bottom-up
// scan runs in local-id order — so queues, emission order, and counter
// values are independent of goroutine scheduling; the final sort makes the
// result byte-identical to the scalar loop in any case.
func (k *Kernel) reachableFrontier(src int, sc *Scratch, mt *Meter, pl Plan) ([]int, error) {
	k.sweepOnce.Do(k.buildSweepTables)
	p := pl.Shards
	if p < 1 {
		p = 1
	}
	if n := k.g.NumNodes(); p > n && n > 0 {
		p = n // empty shards would just idle at every barrier
	}
	fr := sc.frontierFor(k, p)
	shards := fr.shards
	for _, sh := range shards {
		sh.Begin(mt, pl.Dense)
	}
	if p > 1 {
		k.c.addShardSweeps(int64(p))
	}

	fr.seeds = fr.seeds[:0]
	for _, q := range k.starts {
		fr.seeds = append(fr.seeds, src*k.nq+q)
	}
	if len(fr.seeds) > 0 {
		shards[src%p].Seed(fr.seeds)
	}

	total := int64(k.NumProductStates())
	visited := int64(0)
	for _, sh := range shards {
		visited += int64(sh.NextLen())
	}
	frontier := 0
	for _, sh := range shards {
		frontier += sh.Promote(false)
	}
	peak := int64(frontier)
	charged := 0
	bottomUp := false
	level := 0
	var edges, edgesReported int64
	var stopErr error
	// Analyze telemetry rides the level barriers below: every quantity it
	// records — entering frontier, direction ran, edge delta, discoveries,
	// remaining unvisited mass — is already computed there, so analyze-off
	// sweeps pay one nil check per barrier and the loops stay untouched.
	ss := mt.SweepStatsSink()
	for frontier > 0 {
		levelFrontier, levelDir, levelEdges := frontier, bottomUp, edges
		if stopErr = k.runLevel(shards, fr, bottomUp, &edges); stopErr != nil {
			break
		}
		if !bottomUp && p > 1 {
			shipped := exchange(shards)
			ss.RecordOutbox(shipped)
		}
		discovered := 0
		for _, sh := range shards {
			discovered += sh.NextLen()
		}
		visited += int64(discovered)
		if ss != nil {
			ss.RecordLevel(level, int64(levelFrontier), int64(discovered), edges-levelEdges, total-visited, levelDir)
			if p > 1 {
				for i, sh := range shards {
					ss.RecordShardStates(i, int64(sh.NextLen()))
				}
			}
			level++
		}
		// Direction for the coming level, decided at the barrier so every
		// shard agrees (and frontier bitmaps are built only when needed).
		bottomUp = int64(discovered)*frontierAlpha > total-visited
		frontier = 0
		for _, sh := range shards {
			frontier += sh.Promote(bottomUp)
		}
		// Peak frontier is the cross-shard level sum: the level's frontier
		// is one logical queue partitioned P ways, so per-shard maxima
		// would under-report it (the satellite fix this PR pins by test).
		if int64(frontier) > peak {
			peak = int64(frontier)
		}
		if sc.rows != nil {
			if charged, stopErr = chargeShardRows(sc.rows, shards, charged); stopErr != nil {
				break
			}
		}
		if mt != nil {
			mt.SweepProgress(int64(frontier), edges-edgesReported)
			edgesReported = edges
		}
	}
	if stopErr == nil && sc.rows != nil {
		_, stopErr = chargeShardRows(sc.rows, shards, charged) // seed emissions of a sweep with no levels
	}
	for _, sh := range shards {
		if err := sh.Flush(); err != nil && stopErr == nil {
			stopErr = err
		}
	}
	if mt != nil {
		mt.SweepProgress(0, edges-edgesReported)
	}
	k.c.AddStates(visited)
	k.c.AddEdges(edges)
	k.c.ObserveFrontier(peak)
	if ss != nil {
		ss.RecordFrontierSweep(visited, edges, peak, pl.Dense)
	}
	sc.nodes = sc.nodes[:0]
	for _, sh := range shards {
		sc.nodes = append(sc.nodes, sh.Emitted()...)
	}
	for _, sh := range shards {
		sh.Reset()
	}
	if stopErr != nil {
		return nil, stopErr
	}
	sort.Ints(sc.nodes)
	return sc.nodes, nil
}

// runLevel expands every shard for one level — inline when unsharded, one
// goroutine per shard otherwise (the level barrier is the WaitGroup).
func (k *Kernel) runLevel(shards []Shard, fr *frontierState, bottomUp bool, edges *int64) error {
	if bottomUp {
		for i, sh := range shards {
			fr.peers[i] = sh.FrontierBits()
		}
	}
	// The unsharded path stays goroutine- and closure-free: it is the pure
	// direction-optimizing sweep, and the warm path must not allocate.
	if len(shards) == 1 {
		var ed int64
		var err error
		if bottomUp {
			ed, err = shards[0].ExpandBottomUp(fr.peers)
		} else {
			ed, err = shards[0].ExpandTopDown()
		}
		*edges += ed
		return err
	}
	edgeParts := make([]int64, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			if bottomUp {
				edgeParts[i], errs[i] = sh.ExpandBottomUp(fr.peers)
			} else {
				edgeParts[i], errs[i] = sh.ExpandTopDown()
			}
		}(i, sh)
	}
	wg.Wait()
	for i := range shards {
		*edges += edgeParts[i]
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// exchange moves every outbox to its owner at the level barrier: absorber
// d drains column d of every shard's outbox matrix, in source order, so
// the next frontier's queue order is deterministic. Each (src, dst) cell
// is written in the expand phase and read by exactly one absorber after
// the barrier, so the concurrent absorbers share nothing. Returns the
// total states shipped across shard boundaries — the per-column counts are
// column-exclusive like the absorbers themselves, so summing them after
// the barrier is race-free.
func exchange(shards []Shard) int64 {
	var wg sync.WaitGroup
	shipped := make([]int64, len(shards))
	for d := range shards {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for s := range shards {
				if ids := shards[s].TakeOutbox(d); len(ids) > 0 {
					shipped[d] += int64(len(ids))
					shards[d].AbsorbRemote(ids)
				}
			}
		}(d)
	}
	wg.Wait()
	total := int64(0)
	for _, n := range shipped {
		total += n
	}
	return total
}

// chargeShardRows charges one row per node emitted since the last call
// across all shards, stopping at the first budget error.
func chargeShardRows(rows *Meter, shards []Shard, charged int) (int, error) {
	emitted := 0
	for _, sh := range shards {
		emitted += len(sh.Emitted())
	}
	for charged < emitted {
		if err := rows.AddRows(1); err != nil {
			return charged, err
		}
		charged++
	}
	return charged, nil
}
