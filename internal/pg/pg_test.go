package pg_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"graphquery/internal/automata"
	"graphquery/internal/gen"
	"graphquery/internal/pg"
)

func TestNewMeterNil(t *testing.T) {
	if m := pg.NewMeter(context.Background(), pg.Budget{}); m != nil {
		t.Fatalf("unbudgeted background meter should be nil, got %v", m)
	}
	var m *pg.Meter // nil meter: every operation is a no-op that succeeds
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(1000); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRows(1000); err != nil {
		t.Fatal(err)
	}
}

func TestMeterBudget(t *testing.T) {
	m := pg.NewMeter(context.Background(), pg.Budget{MaxStates: 100})
	if err := m.Tick(100); err != nil {
		t.Fatal(err)
	}
	err := m.Tick(1)
	if !errors.Is(err, pg.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *pg.BudgetError
	if !errors.As(err, &be) || be.Resource != "states" || be.Limit != 100 {
		t.Fatalf("want states BudgetError with limit 100, got %#v", err)
	}
}

func TestMeterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := pg.NewMeter(ctx, pg.Budget{})
	if m == nil {
		t.Fatal("cancellable context should yield a meter")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	cancel()
	err := m.Check()
	if !errors.Is(err, pg.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
}

// TestTicker verifies the amortized instrument charges the meter in
// CheckInterval batches plus an exact remainder, and mirrors the total
// into the counters.
func TestTicker(t *testing.T) {
	m := pg.NewMeter(context.Background(), pg.Budget{MaxStates: pg.CheckInterval + 50})
	var c pg.Counters
	tick := pg.NewTicker(m, &c)
	for i := 0; i < pg.CheckInterval+10; i++ {
		if err := tick.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := tick.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.States(); got != int64(pg.CheckInterval+10) {
		t.Fatalf("meter states = %d, want %d", got, pg.CheckInterval+10)
	}
	if got := c.Snapshot().StatesExpanded; got != int64(pg.CheckInterval+10) {
		t.Fatalf("counter states = %d, want %d", got, pg.CheckInterval+10)
	}

	// Exceeding the budget surfaces at a batch boundary.
	tick = pg.NewTicker(m, &c)
	var err error
	for i := 0; err == nil && i < 2*pg.CheckInterval; i++ {
		err = tick.Step()
	}
	if err == nil {
		err = tick.Flush()
	}
	if !errors.Is(err, pg.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestForEachDeterministic(t *testing.T) {
	fn := func(i int, _ struct{}) ([]int, error) {
		return []int{2 * i, 2*i + 1}, nil
	}
	want, err := pg.ForEach(100, 1, nil, nil, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := pg.ForEach(100, workers, nil, nil, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %v != sequential %v", workers, got, want)
		}
	}
}

func TestForEachError(t *testing.T) {
	boom := fmt.Errorf("boom")
	for _, workers := range []int{1, 4} {
		_, err := pg.ForEach(64, workers, nil, nil, func(i int, _ struct{}) ([]int, error) {
			if i == 33 {
				return nil, boom
			}
			return []int{i}, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: want boom, got %v", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	out, err := pg.ForEach(0, 4, nil, nil, func(i int, _ struct{}) ([]int, error) {
		return []int{i}, nil
	})
	if err != nil || out != nil {
		t.Fatalf("empty fan-out: got (%v, %v), want (nil, nil)", out, err)
	}
}

// TestForEachEmitMatchesForEach: the emitted sequence must be identical to
// ForEach's merged return for any worker count, including with a slow
// consumer exercising the in-flight window, and empty parts are skipped.
func TestForEachEmitMatchesForEach(t *testing.T) {
	fn := func(i int, _ struct{}) ([]int, error) {
		if i%7 == 0 {
			return nil, nil // empty parts never reach emit
		}
		return []int{3 * i, 3*i + 1}, nil
	}
	want, err := pg.ForEach(200, 1, nil, nil, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		var got []int
		err := pg.ForEachEmit(200, workers, nil, nil, fn, func(part []int) error {
			if len(part) == 0 {
				t.Fatal("empty part emitted")
			}
			got = append(got, part...)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: emitted %v != %v", workers, got, want)
		}
	}
}

// TestForEachEmitErrors: both an fn error and an emit error stop the pool
// and surface; the call must join its goroutines either way (the race
// detector enforces that here).
func TestForEachEmitErrors(t *testing.T) {
	boom := fmt.Errorf("boom")
	for _, workers := range []int{1, 4} {
		err := pg.ForEachEmit(64, workers, nil, nil, func(i int, _ struct{}) ([]int, error) {
			if i == 33 {
				return nil, boom
			}
			return []int{i}, nil
		}, func([]int) error { return nil })
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d fn error: want boom, got %v", workers, err)
		}
		emitted := 0
		err = pg.ForEachEmit(64, workers, nil, nil, func(i int, _ struct{}) ([]int, error) {
			return []int{i}, nil
		}, func(part []int) error {
			if emitted++; emitted == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d emit error: want boom, got %v", workers, err)
		}
	}
}

func TestResolve(t *testing.T) {
	g := gen.Random(10, 30, []string{"a", "b"}, 1)
	if _, ok := pg.Resolve(g, automata.GuardLabel("zzz")); ok {
		t.Fatal("positive guard over an absent label should not resolve")
	}
	rg, ok := pg.Resolve(g, automata.GuardLabel("a"))
	if !ok || rg.Negated || len(rg.LabelIDs) != 1 {
		t.Fatalf("positive guard: %+v ok=%v", rg, ok)
	}
	nrg, ok := pg.Resolve(g, automata.Guard{Negated: true, Labels: []string{"a"}})
	if !ok || !nrg.Negated {
		t.Fatalf("negated guard: %+v ok=%v", nrg, ok)
	}
	// The two guards partition the edge set.
	count := func(r pg.ResolvedGuard) int {
		n := 0
		r.Edges(g, func(int) { n++ })
		return n
	}
	if count(rg)+count(nrg) != g.NumEdges() {
		t.Fatalf("a-edges %d + non-a-edges %d != %d", count(rg), count(nrg), g.NumEdges())
	}
}

func TestCountersObserveFrontier(t *testing.T) {
	var c pg.Counters
	c.ObserveFrontier(10)
	c.ObserveFrontier(3)
	c.ObserveFrontier(25)
	if got := c.Snapshot().FrontierPeak; got != 25 {
		t.Fatalf("frontier peak = %d, want 25", got)
	}
	var nilC *pg.Counters
	nilC.AddStates(1) // nil counters must be inert
	nilC.ObserveFrontier(1)
	nilC.CountPlan(pg.Plan{})
	if got := nilC.Snapshot(); got != (pg.CountersSnapshot{}) {
		t.Fatalf("nil counters snapshot = %+v", got)
	}
}
