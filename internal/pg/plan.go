package pg

import "fmt"

// Plan is the evaluation strategy for one compiled query, chosen per
// (graph, automaton) by the cost-based planner in internal/pg/plan from
// cardinality estimates. The zero Plan — forward, label-indexed, worker
// count decided by Options.Parallelism — is the historical default
// behavior, so callers that never plan lose nothing.
type Plan struct {
	// Backward evaluates target→source over the reversed automaton: one
	// sweep per target node collects its sources. Pays off when the query's
	// last labels are much rarer than its first (the reversed frontier
	// stays small). Results are re-sorted, so output is unchanged.
	Backward bool
	// Dense scans full adjacency lists (filtering by guard) instead of the
	// per-label CSR index. Pays off when guards match most labels anyway:
	// one contiguous scan beats several binary-searched index probes.
	Dense bool
	// Workers is the per-source fan-out degree; 0 defers to
	// Options.Parallelism, 1 forces the sequential path.
	Workers int
	// EstStates is the planner's frontier-mass estimate for the chosen
	// direction (product states expanded per sweep) — recorded for Explain
	// output and the plan-selection table in EXPERIMENTS.md.
	EstStates float64
}

func (p Plan) String() string {
	dir, scan := "forward", "indexed"
	if p.Backward {
		dir = "backward"
	}
	if p.Dense {
		scan = "dense"
	}
	return fmt.Sprintf("dir=%s scan=%s workers=%d est=%.0f", dir, scan, p.Workers, p.EstStates)
}
