package pg

import "fmt"

// Plan is the evaluation strategy for one compiled query, chosen per
// (graph, automaton) by the cost-based planner in internal/pg/plan from
// cardinality estimates. The zero Plan — forward, label-indexed, worker
// count decided by Options.Parallelism — is the historical default
// behavior, so callers that never plan lose nothing.
type Plan struct {
	// Backward evaluates target→source over the reversed automaton: one
	// sweep per target node collects its sources. Pays off when the query's
	// last labels are much rarer than its first (the reversed frontier
	// stays small). Results are re-sorted, so output is unchanged.
	Backward bool
	// Dense scans full adjacency lists (filtering by guard) instead of the
	// per-label CSR index. Pays off when guards match most labels anyway:
	// one contiguous scan beats several binary-searched index probes.
	Dense bool
	// Workers is the per-source fan-out degree; 0 defers to
	// Options.Parallelism, 1 forces the sequential path.
	Workers int
	// Frontier routes sweeps through the level-synchronous frontier engine
	// (bitset visited sets, direction-optimizing expansion) instead of the
	// scalar queue loop. Results are identical; only throughput differs.
	Frontier bool
	// Shards partitions the product state space by graph node into this
	// many shard loops with cross-shard exchange at level barriers
	// (meaningful only with Frontier; 0 and 1 both mean unsharded).
	Shards int
	// EstStates is the planner's frontier-mass estimate for the chosen
	// direction (product states expanded per sweep) — recorded for Explain
	// output and the plan-selection table in EXPERIMENTS.md.
	EstStates float64
}

func (p Plan) String() string {
	dir, scan, sweep := "forward", "indexed", "scalar"
	if p.Backward {
		dir = "backward"
	}
	if p.Dense {
		scan = "dense"
	}
	if p.Frontier {
		sweep = "frontier"
	}
	s := fmt.Sprintf("dir=%s scan=%s sweep=%s workers=%d", dir, scan, sweep, p.Workers)
	if p.Shards > 1 {
		s += fmt.Sprintf(" shards=%d", p.Shards)
	}
	return s + fmt.Sprintf(" est=%.0f", p.EstStates)
}
