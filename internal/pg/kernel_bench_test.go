package pg_test

// Micro-benchmarks for the kernel's two scan strategies, pinning the
// break-even the planner's denseFraction constant encodes: on a
// single-label clique every positive guard matches every edge, so the
// per-label index and the dense scan visit the same edges and only the
// per-edge overhead differs.

import (
	"fmt"
	"testing"

	"graphquery/internal/automata"
	"graphquery/internal/gen"
	"graphquery/internal/pg"
)

func cliqueKernel(b *testing.B, k int) *pg.Kernel {
	b.Helper()
	g := gen.Clique(k, "a")
	// a a* — the E15 clique query.
	a := &automata.NFA{
		NumStates: 2,
		Start:     0,
		Accept:    []bool{false, true},
		Trans: [][]automata.Transition{
			{{Guard: automata.GuardLabel("a"), To: 1}},
			{{Guard: automata.GuardLabel("a"), To: 1}},
		},
	}
	return pg.NewKernel(g, pg.FromNFA(g, a), nil)
}

func BenchmarkKernelScan(b *testing.B) {
	for _, k := range []int{32, 64} {
		kern := cliqueKernel(b, k)
		sc := kern.NewScratch()
		b.Run(fmt.Sprintf("indexed/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for u := 0; u < k; u++ {
					if _, err := kern.Reachable(u, sc, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("dense/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for u := 0; u < k; u++ {
					if _, err := kern.ReachableDense(u, sc, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
