// Package pg is the unified product-graph runtime (Section 6.2): every
// language in the paper's tower — RPQ, 2RPQ, ℓ-RPQ, dl-RPQ, and the
// conjunctive closures — is evaluated by search over a product of the graph
// with an automaton, and this package implements that search exactly once.
// The evaluator packages (internal/eval, twoway, lrpq, dlrpq, crpq) are
// thin compilers: each translates its formalism's automaton into a Machine
// (or, for the register-automaton search of dlrpq, borrows the shared
// guard resolution and budget Ticker) and runs the Kernel.
//
// The runtime owns the cross-cutting concerns that PRs 1 and 2 had to
// thread through five packages by hand: label-ID guard resolution against
// the graph's interned label index, the frontier/BFS fixpoint loop,
// amortized Meter/Budget cancellation checks, parallel per-source fan-out
// with a deterministic chunk-ordered merge, witness-reconstruction hooks,
// and runtime counters. Future cross-cutting work (sharding, tracing, new
// languages) lands here once.
package pg

import (
	"graphquery/internal/automata"
	"graphquery/internal/graph"
)

// ResolvedGuard is one transition guard resolved against a concrete
// graph's interned label numbering — the positive/co-finite split that was
// previously copy-pasted across eval, twoway, and dlrpq. Positive guards
// carry the dense label IDs they match, so the kernel intersects them with
// the per-label CSR adjacency; co-finite (negated) guards keep the
// symbolic form and filter a dense scan.
type ResolvedGuard struct {
	LabelIDs []int          // label IDs matched by a positive guard
	Negated  bool           // co-finite guard: scan dense lists, filter by Guard
	Guard    automata.Guard // the symbolic guard (used by negated and dense scans)
}

// Resolve intersects a guard with g's label alphabet. ok is false when a
// positive guard mentions no label present in g — such a transition can
// never fire on g and should be dropped by the caller.
func Resolve(g *graph.Graph, gd automata.Guard) (ResolvedGuard, bool) {
	rg := ResolvedGuard{Negated: gd.Negated, Guard: gd}
	if gd.Negated {
		return rg, true
	}
	for _, lab := range gd.Labels {
		if id, ok := g.LabelID(lab); ok {
			rg.LabelIDs = append(rg.LabelIDs, id)
		}
	}
	return rg, len(rg.LabelIDs) > 0
}

// OutEdges visits the out-edges of node matching the guard: positive
// guards probe the per-label CSR index, co-finite guards filter the dense
// list. Edge order is per-label ascending (positive) or globally ascending
// (negated) — exactly the orders the pre-unification evaluators produced.
func (rg *ResolvedGuard) OutEdges(g *graph.Graph, node int, visit func(ei int)) {
	if rg.Negated {
		for _, ei := range g.Out(node) {
			if rg.Guard.Matches(g.Edge(ei).Label) {
				visit(ei)
			}
		}
		return
	}
	for _, lid := range rg.LabelIDs {
		for _, ei := range g.OutWithLabel(node, lid) {
			visit(ei)
		}
	}
}

// InEdges is OutEdges over incoming edges.
func (rg *ResolvedGuard) InEdges(g *graph.Graph, node int, visit func(ei int)) {
	if rg.Negated {
		for _, ei := range g.In(node) {
			if rg.Guard.Matches(g.Edge(ei).Label) {
				visit(ei)
			}
		}
		return
	}
	for _, lid := range rg.LabelIDs {
		for _, ei := range g.InWithLabel(node, lid) {
			visit(ei)
		}
	}
}

// Edges visits every edge of g matching the guard, in per-label ascending
// order for positive guards and globally ascending order for co-finite
// ones.
func (rg *ResolvedGuard) Edges(g *graph.Graph, visit func(ei int)) {
	if rg.Negated {
		for ei := 0; ei < g.NumEdges(); ei++ {
			if g.EdgeAlive(ei) && rg.Guard.Matches(g.Edge(ei).Label) {
				visit(ei)
			}
		}
		return
	}
	for _, lid := range rg.LabelIDs {
		for _, ei := range g.EdgesWithLabelID(lid) {
			visit(ei)
		}
	}
}

// Trans is one product-graph transition rule: on a graph edge matching the
// guard, move the automaton to state To. Back gives two-way semantics
// (Section 3.1.3): the edge is traversed target→source, so the kernel
// scans incoming instead of outgoing adjacency.
type Trans struct {
	To   int
	Back bool
	ResolvedGuard
}

// Semantics is what a language must provide to run on the kernel: a
// finite state space with start and accepting states and, per state, the
// transition rules already resolved against the target graph. The
// interface is consulted once at Kernel construction (the kernel snapshots
// it into flat slices), so implementations may compute transitions lazily
// without hot-loop cost. Implementations must be immutable once a Kernel
// is built over them.
//
// Instantiations across the tower: eval compiles NFAs forward (FromNFA)
// and reversed (FromNFABackward); twoway compiles TNFAs with Back flags;
// lrpq erases variable annotations and compiles the underlying NFA; crpq
// instantiates one forward machine per atom; dlrpq's register-automaton
// configurations are infinite-state and run their own search, borrowing
// ResolvedGuard and Ticker instead.
type Semantics interface {
	// NumStates returns |Q|.
	NumStates() int
	// Starts returns the initial states (one for forward automata, the
	// accepting set for reversed ones).
	Starts() []int
	// Accepting reports whether q ∈ F.
	Accepting(q int) bool
	// Transitions returns q's outgoing transition rules. The returned
	// slice must not be modified.
	Transitions(q int) []Trans
}

// Machine is the standard Semantics implementation: a graph-resolved
// automaton in flat slices. Evaluator packages build one per (graph,
// automaton) pair — via FromNFA/FromNFABackward for plain NFAs, or by hand
// (NewMachine/Add) for formalisms with extra transition structure like the
// two-way Back flag.
type Machine struct {
	numStates int
	starts    []int
	accept    []bool
	trans     [][]Trans
}

// NewMachine returns an empty machine with the given state count and
// start states.
func NewMachine(numStates int, starts ...int) *Machine {
	return &Machine{
		numStates: numStates,
		starts:    starts,
		accept:    make([]bool, numStates),
		trans:     make([][]Trans, numStates),
	}
}

// SetAccept marks q accepting.
func (m *Machine) SetAccept(q int) { m.accept[q] = true }

// Add appends a transition rule to state from, preserving insertion order
// (the tie-break order evaluators rely on).
func (m *Machine) Add(from int, t Trans) { m.trans[from] = append(m.trans[from], t) }

// NumStates implements Semantics.
func (m *Machine) NumStates() int { return m.numStates }

// Starts implements Semantics.
func (m *Machine) Starts() []int { return m.starts }

// Accepting implements Semantics.
func (m *Machine) Accepting(q int) bool { return m.accept[q] }

// Transitions implements Semantics.
func (m *Machine) Transitions(q int) []Trans { return m.trans[q] }

// FromNFA resolves an ε-free NFA against g into a forward machine:
// transitions follow edges source→target. Transitions whose positive guard
// matches no label of g are dropped.
func FromNFA(g *graph.Graph, a *automata.NFA) *Machine {
	m := NewMachine(a.NumStates, a.Start)
	resolve := newResolver(g)
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			m.SetAccept(q)
		}
		// Exact-capacity slice: Glushkov automata carry Θ(|Q|²)
		// transitions, so repeated append growth dominates cold compiles.
		m.trans[q] = make([]Trans, 0, len(a.Trans[q]))
		for _, t := range a.Trans[q] {
			rg, ok := resolve(t.Guard)
			if !ok {
				continue
			}
			m.Add(q, Trans{To: t.To, ResolvedGuard: rg})
		}
	}
	return m
}

// FromNFABackward resolves a into the reversed machine: it starts from a's
// accepting states, runs every transition in reverse over incoming edges
// (Back = true), and accepts at a's start state. A sweep from node v then
// finds exactly the sources u with (u, v) in the forward semantics — the
// planner picks this direction when the query's final labels are the
// selective ones.
func FromNFABackward(g *graph.Graph, a *automata.NFA) *Machine {
	var starts []int
	counts := make([]int, a.NumStates)
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			starts = append(starts, q)
		}
		for _, t := range a.Trans[q] {
			counts[t.To]++
		}
	}
	m := NewMachine(a.NumStates, starts...)
	m.SetAccept(a.Start)
	resolve := newResolver(g)
	for q := 0; q < a.NumStates; q++ {
		m.trans[q] = make([]Trans, 0, counts[q])
	}
	for q := 0; q < a.NumStates; q++ {
		for _, t := range a.Trans[q] {
			rg, ok := resolve(t.Guard)
			if !ok {
				continue
			}
			m.Add(t.To, Trans{To: q, Back: true, ResolvedGuard: rg})
		}
	}
	return m
}

// newResolver returns a Resolve memoized over single-label positive
// guards — the overwhelmingly common case, repeated across the Θ(|Q|²)
// transitions of a Glushkov automaton. The cached ResolvedGuard (and its
// LabelIDs slice) is shared across transitions; both are read-only after
// construction.
func newResolver(g *graph.Graph) func(automata.Guard) (ResolvedGuard, bool) {
	cache := make(map[string]ResolvedGuard)
	return func(gd automata.Guard) (ResolvedGuard, bool) {
		if gd.Negated || len(gd.Labels) != 1 {
			return Resolve(g, gd)
		}
		if rg, ok := cache[gd.Labels[0]]; ok {
			return rg, true
		}
		rg, ok := Resolve(g, gd)
		if ok {
			cache[gd.Labels[0]] = rg
		}
		return rg, ok
	}
}
