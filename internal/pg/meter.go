package pg

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"graphquery/internal/obs"
)

// The serving-layer error taxonomy (Section 6.1/6.3 motivate it: evaluation
// cost can blow up combinatorially, so a query service must be able to stop
// a run and say precisely why). ErrCanceled covers cooperative cancellation
// — client disconnect and deadline expiry both unwrap to it, and deadline
// expiry additionally unwraps to context.DeadlineExceeded so callers can
// tell a timeout from an abort. ErrBudgetExceeded covers per-query resource
// budgets (product states visited, result rows produced).
//
// The error texts keep their historical "eval:" prefix: the meter began
// life in internal/eval and the serving layer's client-visible messages
// must not change under the runtime unification.
var (
	// ErrCanceled is returned when evaluation stops because its context was
	// canceled or its deadline expired.
	ErrCanceled = errors.New("eval: canceled")
	// ErrBudgetExceeded is returned when evaluation exceeds a resource
	// budget. Concrete errors are *BudgetError values wrapping it.
	ErrBudgetExceeded = errors.New("eval: budget exceeded")
)

// BudgetError reports which resource budget a query exhausted.
type BudgetError struct {
	Resource string // "states" (product states visited) or "rows"
	Limit    int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("eval: %s budget exceeded (limit %d)", e.Resource, e.Limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// canceledError carries the context cause, so errors.Is matches both
// ErrCanceled and the underlying context.Canceled/context.DeadlineExceeded.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return "eval: canceled: " + e.cause.Error() }

func (e *canceledError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// Budget caps the resources one query evaluation may consume. Zero fields
// mean unlimited.
type Budget struct {
	// MaxStates bounds the number of product-graph states visited across
	// all worker goroutines of the query (the unit of evaluation work).
	MaxStates int64
	// MaxRows bounds the number of result rows / paths / pairs produced.
	// Unlike enumeration limits (which truncate), exceeding MaxRows is an
	// error.
	MaxRows int64
}

// CheckInterval is how many product states an evaluator may expand between
// cooperative checks. Checks cost an atomic add plus a context poll, so
// they are amortized: cancellation latency is bounded by the time to expand
// CheckInterval states per worker (microseconds), while the hot loop stays
// branch-cheap. Every evaluator in the repo runs its budget-check loop
// through this package (the kernel or a Ticker); the interval — every 256
// states — is therefore defined exactly once.
const CheckInterval = 256

// Meter is the live instrument of one query: it carries the context and
// enforces the budget. One meter is shared by every goroutine and every
// evaluation stage of the query, so budgets are global to the query, and a
// single worker exceeding them stops the others at their next check (the
// shared counters are already over the limit). All methods are safe for
// concurrent use and nil-safe — a nil *Meter means "unlimited,
// uncancellable" and costs nothing.
type Meter struct {
	ctx       context.Context
	maxStates int64
	maxRows   int64
	states    atomic.Int64
	rows      atomic.Int64

	// prog, when set, mirrors the meter's readings into a live Progress
	// sampled by the serving layer's in-flight registry. Updates ride the
	// amortized tick (every CheckInterval states), so live introspection
	// adds no new branches to evaluation hot loops.
	prog *obs.Progress

	// sweep, when set, is the analyze-mode telemetry sink: the kernel
	// records per-sweep and per-level statistics into it at sweep exits and
	// level barriers. Nil for every non-analyze query.
	sweep *SweepStats
}

// NewMeter builds the meter for ctx and b. It returns nil — the free meter —
// when ctx can never be canceled and b is zero, so uninstrumented callers
// (context.Background, no budget) pay nothing.
func NewMeter(ctx context.Context, b Budget) *Meter {
	return NewMeterProgress(ctx, b, nil)
}

// NewMeterProgress is NewMeter with a live-progress sink: every states/rows
// batch the meter accounts is also added to p. A non-nil p forces a non-nil
// meter even with no deadline and no budget — progress sampling needs the
// ticks to flow.
func NewMeterProgress(ctx context.Context, b Budget, p *obs.Progress) *Meter {
	return NewMeterAnalyze(ctx, b, p, nil)
}

// NewMeterAnalyze is NewMeterProgress with an analyze-mode telemetry sink:
// the kernel records sweep and level statistics into ss at its existing
// exit and barrier sites. A non-nil ss forces a non-nil meter — the sink
// travels on the meter, so telemetry needs one even with no deadline, no
// budget, and no progress.
func NewMeterAnalyze(ctx context.Context, b Budget, p *obs.Progress, ss *SweepStats) *Meter {
	if ctx == nil {
		ctx = context.Background()
	}
	if p == nil && ss == nil && ctx.Done() == nil && b == (Budget{}) {
		return nil
	}
	return &Meter{ctx: ctx, maxStates: b.MaxStates, maxRows: b.MaxRows, prog: p, sweep: ss}
}

// SweepStatsSink returns the meter's analyze-mode telemetry sink, nil for
// non-analyze queries (and on a nil meter). Kernel code guards every
// recording site with it, so analyze-off sweeps pay one nil check per
// sweep exit or level barrier and nothing more.
func (m *Meter) SweepStatsSink() *SweepStats {
	if m == nil {
		return nil
	}
	return m.sweep
}

// Tick records n newly visited product states and reports whether the query
// must stop: states budget exhausted or context canceled.
func (m *Meter) Tick(n int64) error {
	if m == nil {
		return nil
	}
	m.prog.AddStates(n)
	if total := m.states.Add(n); m.maxStates > 0 && total > m.maxStates {
		return &BudgetError{Resource: "states", Limit: m.maxStates}
	}
	return m.ctxErr()
}

// AddRows records n produced result rows and reports whether the rows
// budget is exhausted.
func (m *Meter) AddRows(n int64) error {
	if m == nil {
		return nil
	}
	m.prog.AddRows(n)
	if total := m.rows.Add(n); m.maxRows > 0 && total > m.maxRows {
		return &BudgetError{Resource: "rows", Limit: m.maxRows}
	}
	return nil
}

// SweepProgress reports a kernel sweep's live shape — the current frontier
// length and the adjacency entries scanned since the last report — to the
// meter's progress sink. Called only at the kernel's amortized tick sites
// (and on sweep exit), never per state; a meter without a sink ignores it.
func (m *Meter) SweepProgress(frontier, edges int64) {
	if m == nil || m.prog == nil {
		return
	}
	m.prog.SetFrontier(frontier)
	m.prog.AddEdges(edges)
}

// Check polls for cancellation and an already-exhausted states budget
// without recording work — the cheap per-item check of fan-out drivers.
func (m *Meter) Check() error {
	if m == nil {
		return nil
	}
	if m.maxStates > 0 && m.states.Load() > m.maxStates {
		return &BudgetError{Resource: "states", Limit: m.maxStates}
	}
	return m.ctxErr()
}

func (m *Meter) ctxErr() error {
	if err := m.ctx.Err(); err != nil {
		if cause := context.Cause(m.ctx); cause != nil {
			err = cause
		}
		return &canceledError{cause: err}
	}
	return nil
}

// States returns the product states visited so far.
func (m *Meter) States() int64 {
	if m == nil {
		return 0
	}
	return m.states.Load()
}

// Rows returns the result rows produced so far.
func (m *Meter) Rows() int64 {
	if m == nil {
		return 0
	}
	return m.rows.Load()
}

// Ticker is the amortized budget-check instrument for evaluators whose
// search loops are not the dense kernel — the DFS path enumerators and the
// register-automaton configuration search. Call Step once per expanded
// state/configuration and Flush when the loop ends: the shared meter is
// ticked and the runtime counters updated once every CheckInterval steps
// instead of on each one. The zero Ticker (no meter, no counters) is valid
// and free.
type Ticker struct {
	m       *Meter
	c       *Counters
	pending int64
}

// NewTicker builds a ticker feeding the given meter and counters; either
// may be nil.
func NewTicker(m *Meter, c *Counters) Ticker {
	return Ticker{m: m, c: c}
}

// Step records one expanded state and, every CheckInterval steps, flushes
// the batch to the meter — returning the meter's verdict (cancellation or
// an exhausted states budget).
func (t *Ticker) Step() error {
	t.pending++
	if t.pending >= CheckInterval {
		return t.Flush()
	}
	return nil
}

// Flush forces the pending batch out to the meter and counters; call it
// when the search loop ends so the tail below one interval is accounted.
func (t *Ticker) Flush() error {
	n := t.pending
	if n == 0 {
		return nil
	}
	t.pending = 0
	t.c.AddStates(n)
	return t.m.Tick(n)
}
