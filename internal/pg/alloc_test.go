//go:build !race

package pg_test

// Allocation-count regressions are excluded from -race runs: the
// detector's own instrumentation allocates, so the counts only mean
// anything in a plain build.

import (
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/pg"
)

// TestScratchPoolWarmSweepAllocs is the satellite alloc regression: a warm
// GetScratch → sweep → PutScratch cycle must not allocate, on the scalar
// path and on the unsharded frontier path (which runs inline, with no
// goroutines).
func TestScratchPoolWarmSweepAllocs(t *testing.T) {
	g := gen.Clique(24, "a")
	kern, _ := sweepKernels(t, g, "a a*")
	for name, pl := range map[string]pg.Plan{
		"scalar":   {},
		"frontier": {Frontier: true, Shards: 1},
	} {
		// Warm the pool and every internal buffer first.
		for i := 0; i < 3; i++ {
			sc := kern.GetScratch()
			if _, err := kern.ReachableSweep(0, sc, nil, pl); err != nil {
				t.Fatal(err)
			}
			kern.PutScratch(sc)
		}
		allocs := testing.AllocsPerRun(50, func() {
			sc := kern.GetScratch()
			if _, err := kern.ReachableSweep(0, sc, nil, pl); err != nil {
				t.Fatal(err)
			}
			kern.PutScratch(sc)
		})
		if allocs >= 1 {
			t.Fatalf("%s warm sweep allocates %.1f times per run, want 0", name, allocs)
		}
	}
}
