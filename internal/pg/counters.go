package pg

import "sync/atomic"

// Counters is the kernel's always-on runtime instrumentation: cumulative
// work counters an engine attaches once and reads forever (surfaced through
// core.Engine and the server's /v1/statz). Every field is an independent
// atomic, updated in amortized batches by the kernel (one flush per
// reachability sweep, one per Ticker interval), so instrumentation costs
// nothing measurable on the hot path. All methods are nil-safe: a nil
// *Counters records nothing and costs nothing.
type Counters struct {
	statesExpanded atomic.Int64 // product states dequeued and expanded
	edgesScanned   atomic.Int64 // adjacency entries examined (incl. non-matching in dense scans)
	frontierPeak   atomic.Int64 // max BFS frontier length observed by any sweep
	planForward    atomic.Int64 // sweeps run source→target
	planBackward   atomic.Int64 // sweeps run target→source over the reversed automaton
	planIndexed    atomic.Int64 // sweeps using the per-label CSR index
	planDense      atomic.Int64 // sweeps scanning full adjacency lists
	planParallel   atomic.Int64 // queries fanned out over >1 worker
	planSequential atomic.Int64 // queries evaluated by a single worker
	planFrontier   atomic.Int64 // queries routed through the frontier engine
	planSharded    atomic.Int64 // queries run with >1 kernel shard
	shardSweeps    atomic.Int64 // shard sweep loops run (P per sharded sweep)

	// Mispick counters: analyze-mode queries whose measured actuals
	// contradicted one of the planner's knob choices (plan.Mispicks). Only
	// analyze queries feed these — they are estimate-vs-actual audit
	// signals, not hot-path accounting.
	mispickDirection atomic.Int64
	mispickScan      atomic.Int64
	mispickFrontier  atomic.Int64
	mispickShards    atomic.Int64
}

// AddStates records n expanded product states (or search configurations).
func (c *Counters) AddStates(n int64) {
	if c != nil && n > 0 {
		c.statesExpanded.Add(n)
	}
}

// AddEdges records n scanned adjacency entries.
func (c *Counters) AddEdges(n int64) {
	if c != nil && n > 0 {
		c.edgesScanned.Add(n)
	}
}

// ObserveFrontier folds one sweep's peak frontier length into the running
// maximum.
func (c *Counters) ObserveFrontier(n int64) {
	if c == nil {
		return
	}
	for {
		cur := c.frontierPeak.Load()
		if n <= cur || c.frontierPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// CountPlan records which strategy the planner chose for one query.
func (c *Counters) CountPlan(p Plan) {
	if c == nil {
		return
	}
	if p.Backward {
		c.planBackward.Add(1)
	} else {
		c.planForward.Add(1)
	}
	if p.Dense {
		c.planDense.Add(1)
	} else {
		c.planIndexed.Add(1)
	}
	if p.Workers > 1 {
		c.planParallel.Add(1)
	} else {
		c.planSequential.Add(1)
	}
	if p.Frontier {
		c.planFrontier.Add(1)
	}
	if p.Shards > 1 {
		c.planSharded.Add(1)
	}
}

// CountMispick records one plan knob an analyze-mode query found
// contradicted by its measured actuals. knob is one of "direction",
// "scan", "frontier", "shards" (plan.Mispicks's vocabulary); unknown
// values are ignored.
func (c *Counters) CountMispick(knob string) {
	if c == nil {
		return
	}
	switch knob {
	case "direction":
		c.mispickDirection.Add(1)
	case "scan":
		c.mispickScan.Add(1)
	case "frontier":
		c.mispickFrontier.Add(1)
	case "shards":
		c.mispickShards.Add(1)
	}
}

// addShardSweeps records n shard sweep loops (the kernel adds P per
// sharded sweep, so the counter reads as total shard-level work units).
func (c *Counters) addShardSweeps(n int64) {
	if c != nil && n > 0 {
		c.shardSweeps.Add(n)
	}
}

// CountersSnapshot is a point-in-time copy of the counters, shaped for JSON
// (the /v1/statz payload). Fields may be mutually torn by concurrent
// updates but are individually exact.
type CountersSnapshot struct {
	StatesExpanded int64 `json:"states_expanded"`
	EdgesScanned   int64 `json:"edges_scanned"`
	FrontierPeak   int64 `json:"frontier_peak"`
	PlanForward    int64 `json:"plan_forward"`
	PlanBackward   int64 `json:"plan_backward"`
	PlanIndexed    int64 `json:"plan_indexed"`
	PlanDense      int64 `json:"plan_dense"`
	PlanParallel   int64 `json:"plan_parallel"`
	PlanSequential int64 `json:"plan_sequential"`
	PlanFrontier   int64 `json:"plan_frontier"`
	PlanSharded    int64 `json:"plan_sharded"`
	ShardSweeps    int64 `json:"shard_sweeps"`

	MispickDirection int64 `json:"mispick_direction"`
	MispickScan      int64 `json:"mispick_scan"`
	MispickFrontier  int64 `json:"mispick_frontier"`
	MispickShards    int64 `json:"mispick_shards"`
}

// Snapshot reads the counters. A nil receiver yields the zero snapshot.
func (c *Counters) Snapshot() CountersSnapshot {
	if c == nil {
		return CountersSnapshot{}
	}
	return CountersSnapshot{
		StatesExpanded: c.statesExpanded.Load(),
		EdgesScanned:   c.edgesScanned.Load(),
		FrontierPeak:   c.frontierPeak.Load(),
		PlanForward:    c.planForward.Load(),
		PlanBackward:   c.planBackward.Load(),
		PlanIndexed:    c.planIndexed.Load(),
		PlanDense:      c.planDense.Load(),
		PlanParallel:   c.planParallel.Load(),
		PlanSequential: c.planSequential.Load(),
		PlanFrontier:   c.planFrontier.Load(),
		PlanSharded:    c.planSharded.Load(),
		ShardSweeps:    c.shardSweeps.Load(),

		MispickDirection: c.mispickDirection.Load(),
		MispickScan:      c.mispickScan.Load(),
		MispickFrontier:  c.mispickFrontier.Load(),
		MispickShards:    c.mispickShards.Load(),
	}
}
