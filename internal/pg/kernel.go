package pg

import (
	"sort"
	"sync"

	"graphquery/internal/graph"
)

// State is a product-graph node (u, q): graph node u, automaton state q.
type State struct {
	Node  int
	State int
}

// Step is one product edge: the graph edge taken and the resulting state.
type Step struct {
	Edge int
	To   State
}

// Kernel runs product-graph search over one (graph, Semantics) pair. It
// snapshots the semantics into flat slices at construction, so the
// fixpoint loop touches no interfaces; a Kernel is immutable afterwards
// and safe for concurrent use (each goroutine brings its own Scratch).
type Kernel struct {
	g      *graph.Graph
	sem    Semantics
	c      *Counters
	nq     int
	starts []int
	accept []bool
	trans  [][]Trans

	// Frontier-engine transition tables (sweep.go), compiled lazily on the
	// first frontier-planned sweep: ft[q] are the transitions out of q with
	// per-label match tables, rt[q] the transitions into q.
	sweepOnce sync.Once
	ft, rt    [][]kTrans

	// pool recycles Scratch values across sweeps (GetScratch/PutScratch),
	// so warm queries stop reallocating O(product-states) buffers.
	pool sync.Pool
}

// NewKernel builds a kernel over g with the given semantics; c (may be
// nil) receives the kernel's runtime counters.
func NewKernel(g *graph.Graph, sem Semantics, c *Counters) *Kernel {
	k := &Kernel{
		g:      g,
		sem:    sem,
		c:      c,
		nq:     sem.NumStates(),
		starts: sem.Starts(),
		accept: make([]bool, sem.NumStates()),
		trans:  make([][]Trans, sem.NumStates()),
	}
	for q := 0; q < k.nq; q++ {
		k.accept[q] = sem.Accepting(q)
		k.trans[q] = sem.Transitions(q)
	}
	return k
}

// Graph returns the kernel's graph.
func (k *Kernel) Graph() *graph.Graph { return k.g }

// Semantics returns the semantics the kernel was built over.
func (k *Kernel) Semantics() Semantics { return k.sem }

// Counters returns the counters sink attached at construction (may be nil).
func (k *Kernel) Counters() *Counters { return k.c }

// NumProductStates returns |N|·|Q|, the worst-case product size.
func (k *Kernel) NumProductStates() int { return k.g.NumNodes() * k.nq }

// ID packs a product state into a dense integer.
func (k *Kernel) ID(s State) int { return s.Node*k.nq + s.State }

// Unid unpacks a dense integer into a product state.
func (k *Kernel) Unid(i int) State { return State{Node: i / k.nq, State: i % k.nq} }

// Accepting reports whether s is accepting.
func (k *Kernel) Accepting(s State) bool { return k.accept[s.State] }

// Scratch holds the reusable buffers of repeated single-source
// reachability sweeps over one kernel: a visited bitmap over product
// states, the BFS queue (which doubles as the touched list for O(visited)
// resets), and a per-graph-node emitted bitmap. One scratch serves one
// goroutine.
type Scratch struct {
	visited []bool
	emitted []bool
	queue   []int
	nodes   []int
	// rows is live only inside a ReachableRows sweep: the meter charged one
	// row per emitted node, between dequeues. Per-row charging is what
	// makes MaxRows exact — the amortized Tick path may overshoot the
	// states budget by up to CheckInterval, but a rows budget trips on row
	// MaxRows+1. The charging happens in the dequeue loop, NOT in visit:
	// visit runs once per scanned edge and must stay under the inlining
	// budget.
	rows *Meter
	// fr is the frontier engine's shard set (sweep.go), built on the first
	// frontier-planned sweep with this scratch and reused afterwards.
	fr *frontierState
}

// NewScratch allocates buffers sized for k.
func (k *Kernel) NewScratch() *Scratch {
	return &Scratch{
		visited: make([]bool, k.NumProductStates()),
		emitted: make([]bool, k.g.NumNodes()),
	}
}

// GetScratch returns a pooled scratch for k, allocating only when the pool
// is empty. Pair with PutScratch when the sweep's result slice has been
// consumed (results alias the scratch).
func (k *Kernel) GetScratch() *Scratch {
	if sc, ok := k.pool.Get().(*Scratch); ok {
		return sc
	}
	return k.NewScratch()
}

// PutScratch returns a scratch obtained from GetScratch to the pool. The
// scratch must not be used afterwards.
func (k *Kernel) PutScratch(sc *Scratch) {
	if sc != nil {
		k.pool.Put(sc)
	}
}

// Reachable computes all graph nodes v such that an accepting product
// state (v, q) is reachable from (src, q₀) for some start state q₀, sorted
// ascending. The returned slice aliases sc.nodes and is valid until the
// next call with the same scratch. A nil meter never fails; on error the
// scratch is still reset, so the caller may reuse it.
//
// This is the frontier/BFS fixpoint loop of the runtime — the single
// amortized budget-check loop all evaluators share: every CheckInterval
// (256) dequeued states the count is flushed to the shared meter, which
// polls for cancellation or an exhausted states budget.
func (k *Kernel) Reachable(src int, sc *Scratch, mt *Meter) ([]int, error) {
	return k.reachable(src, sc, mt, false)
}

// ReachableDense is Reachable under a dense-scan plan: positive guards
// filter full adjacency lists instead of probing the per-label index. The
// result is identical; only the scan strategy differs.
func (k *Kernel) ReachableDense(src int, sc *Scratch, mt *Meter) ([]int, error) {
	return k.reachable(src, sc, mt, true)
}

// ReachableRows is Reachable with exact rows-budget accounting: every node
// emitted into the result charges one row on mt (one AddRows call per row,
// flushed between dequeues), so a MaxRows budget fails on row MaxRows+1
// instead of after a whole sweep's batch. dense selects the scan strategy
// as in ReachableDense. States remain amortized (every CheckInterval
// dequeues) — the sweep stops within one dequeue of the first row over
// budget.
func (k *Kernel) ReachableRows(src int, sc *Scratch, mt *Meter, dense bool) ([]int, error) {
	sc.rows = mt
	defer func() { sc.rows = nil }()
	return k.reachable(src, sc, mt, dense)
}

// ReachableRowsSink is ReachableRows with callback delivery: once the sweep
// completes, every emitted node is handed to sink in ascending order. Rows
// are still charged on mt at emission time inside the sweep, so the exact
// MaxRows+1 budget trip of ReachableRows is preserved; memory stays the
// sweep's own O(graph) scratch (the per-sweep node list is bounded by the
// graph, not by a multi-source result). A sink error aborts delivery and is
// returned verbatim, so streaming layers can stop early with a sentinel.
func (k *Kernel) ReachableRowsSink(src int, sc *Scratch, mt *Meter, dense bool, sink func(node int) error) error {
	nodes, err := k.ReachableRows(src, sc, mt, dense)
	if err != nil {
		return err
	}
	for _, v := range nodes {
		if err := sink(v); err != nil {
			return err
		}
	}
	return nil
}

func (k *Kernel) reachable(src int, sc *Scratch, mt *Meter, dense bool) ([]int, error) {
	g := k.g
	nq := k.nq
	sc.queue = sc.queue[:0]
	sc.nodes = sc.nodes[:0]
	for _, q := range k.starts {
		id := src*nq + q
		if sc.visited[id] {
			continue
		}
		sc.visited[id] = true
		sc.queue = append(sc.queue, id)
		if k.accept[q] && !sc.emitted[src] {
			sc.emitted[src] = true
			sc.nodes = append(sc.nodes, src)
		}
	}
	var stopErr error
	var edgesScanned, edgesReported int64
	peak := 0
	ticked := 0
	charged := 0
	head := 0
	for ; head < len(sc.queue); head++ {
		// Exact rows accounting (ReachableRows only): charge emissions from
		// the previous dequeue — and the start states — one row at a time,
		// so the meter reads exactly MaxRows+1 when the budget trips.
		if sc.rows != nil && charged < len(sc.nodes) {
			if charged, stopErr = chargeRows(sc, charged); stopErr != nil {
				break
			}
		}
		if mt != nil && head-ticked >= CheckInterval {
			if stopErr = mt.Tick(int64(head - ticked)); stopErr != nil {
				break
			}
			ticked = head
			// Live-progress sampling piggybacks on the amortized tick: the
			// hot loop gains no new branches, and an in-flight registry sees
			// the frontier and edge counts at CheckInterval granularity.
			mt.SweepProgress(int64(len(sc.queue)-head), edgesScanned-edgesReported)
			edgesReported = edgesScanned
		}
		if f := len(sc.queue) - head; f > peak {
			peak = f
		}
		cur := sc.queue[head]
		node, state := cur/nq, cur%nq
		trans := k.trans[state]
		for ti := range trans {
			t := &trans[ti]
			if t.Negated || dense {
				adj := g.Out(node)
				if t.Back {
					adj = g.In(node)
				}
				edgesScanned += int64(len(adj))
				for _, ei := range adj {
					// Positive guards filter by interned label ID (an int
					// compare against a tiny list); only co-finite guards
					// need the symbolic match.
					if t.Negated {
						if !t.Guard.Matches(g.Edge(ei).Label) {
							continue
						}
					} else if !containsLabel(t.LabelIDs, g.EdgeLabelID(ei)) {
						continue
					}
					e := g.Edge(ei)
					if t.Back {
						k.visit(e.Src, t.To, sc)
					} else {
						k.visit(e.Tgt, t.To, sc)
					}
				}
				continue
			}
			// Indexed fast path, split per direction so the inner loop
			// carries no per-edge branch.
			to := t.To
			if t.Back {
				for _, lid := range t.LabelIDs {
					adj := g.InWithLabel(node, lid)
					edgesScanned += int64(len(adj))
					for _, ei := range adj {
						k.visit(g.Edge(ei).Src, to, sc)
					}
				}
				continue
			}
			for _, lid := range t.LabelIDs {
				adj := g.OutWithLabel(node, lid)
				edgesScanned += int64(len(adj))
				for _, ei := range adj {
					k.visit(g.Edge(ei).Tgt, to, sc)
				}
			}
		}
	}
	if stopErr == nil && sc.rows != nil && charged < len(sc.nodes) {
		_, stopErr = chargeRows(sc, charged) // emissions of the final dequeue
	}
	if stopErr == nil && mt != nil && head > ticked {
		stopErr = mt.Tick(int64(head - ticked))
	}
	if mt != nil {
		mt.SweepProgress(0, edgesScanned-edgesReported) // sweep over: frontier drained
	}
	k.c.AddStates(int64(head))
	k.c.AddEdges(edgesScanned)
	k.c.ObserveFrontier(int64(peak))
	// Analyze telemetry shares the exit accounting above: one nil check per
	// sweep, no new branches inside the dequeue loop.
	if ss := mt.SweepStatsSink(); ss != nil {
		ss.RecordScalar(int64(head), edgesScanned, int64(peak), dense)
	}
	// Reset the bitmaps by replaying the touched lists (on error too, so
	// the scratch stays reusable).
	for _, id := range sc.queue {
		sc.visited[id] = false
	}
	for _, v := range sc.nodes {
		sc.emitted[v] = false
	}
	if stopErr != nil {
		return nil, stopErr
	}
	sort.Ints(sc.nodes)
	return sc.nodes, nil
}

// visit pushes product state (node, to) if unseen, emitting node when the
// automaton state accepts. It runs once per scanned edge: keep it small
// enough to inline (rows charging lives in the dequeue loop for exactly
// this reason).
func (k *Kernel) visit(node, to int, sc *Scratch) {
	id := node*k.nq + to
	if sc.visited[id] {
		return
	}
	sc.visited[id] = true
	sc.queue = append(sc.queue, id)
	if k.accept[to] && !sc.emitted[node] {
		sc.emitted[node] = true
		sc.nodes = append(sc.nodes, node)
	}
}

// chargeRows charges one row per node emitted since the last call,
// stopping at the first budget error.
func chargeRows(sc *Scratch, charged int) (int, error) {
	for charged < len(sc.nodes) {
		if err := sc.rows.AddRows(1); err != nil {
			return charged, err
		}
		charged++
	}
	return charged, nil
}

// Distances computes BFS distances (−1 for unreached) over the product
// from src, under a meter — the distance sweep behind shortest-path modes.
// Distance values are order-independent, so unlike BFS no expansion order
// is imposed and no parents are recorded.
func (k *Kernel) Distances(src int, mt *Meter) ([]int, error) {
	g := k.g
	dist := make([]int, k.NumProductStates())
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for _, q := range k.starts {
		id := src*k.nq + q
		if dist[id] == 0 {
			continue
		}
		dist[id] = 0
		queue = append(queue, id)
	}
	var stopErr error
	var edgesScanned, edgesReported int64
	peak := 0
	ticked := 0
	head := 0
	for ; head < len(queue); head++ {
		if mt != nil && head-ticked >= CheckInterval {
			if stopErr = mt.Tick(int64(head - ticked)); stopErr != nil {
				break
			}
			ticked = head
			mt.SweepProgress(int64(len(queue)-head), edgesScanned-edgesReported)
			edgesReported = edgesScanned
		}
		if f := len(queue) - head; f > peak {
			peak = f
		}
		cur := queue[head]
		node, state := cur/k.nq, cur%k.nq
		trans := k.trans[state]
		for ti := range trans {
			t := &trans[ti]
			visit := func(ei int) {
				edgesScanned++
				e := g.Edge(ei)
				to := e.Tgt
				if t.Back {
					to = e.Src
				}
				id := to*k.nq + t.To
				if dist[id] == -1 {
					dist[id] = dist[cur] + 1
					queue = append(queue, id)
				}
			}
			if t.Back {
				t.InEdges(g, node, visit)
			} else {
				t.OutEdges(g, node, visit)
			}
		}
	}
	if stopErr == nil && mt != nil && head > ticked {
		stopErr = mt.Tick(int64(head - ticked))
	}
	if mt != nil {
		mt.SweepProgress(0, edgesScanned-edgesReported)
	}
	k.c.AddStates(int64(head))
	k.c.AddEdges(edgesScanned)
	k.c.ObserveFrontier(int64(peak))
	if ss := mt.SweepStatsSink(); ss != nil {
		ss.RecordScalar(int64(head), edgesScanned, int64(peak), false)
	}
	if stopErr != nil {
		return nil, stopErr
	}
	return dist, nil
}

// Succ returns the outgoing product edges of s in ascending (graph edge,
// transition) order — the deterministic order every path enumerator, the
// PMR construction, and the k-shortest tie-breaking rely on.
func (k *Kernel) Succ(s State) []Step {
	type cand struct{ edge, ord, to, back int }
	var cands []cand
	g := k.g
	trans := k.trans[s.State]
	for ti := range trans {
		t := &trans[ti]
		back := 0
		if t.Back {
			back = 1
		}
		add := func(ei int) {
			cands = append(cands, cand{ei, ti, t.To, back})
		}
		if t.Back {
			t.InEdges(g, s.Node, add)
		} else {
			t.OutEdges(g, s.Node, add)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].edge != cands[j].edge {
			return cands[i].edge < cands[j].edge
		}
		return cands[i].ord < cands[j].ord
	})
	out := make([]Step, len(cands))
	for i, c := range cands {
		to := g.Edge(c.edge).Tgt
		if c.back == 1 {
			to = g.Edge(c.edge).Src
		}
		out[i] = Step{Edge: c.edge, To: State{Node: to, State: c.to}}
	}
	return out
}

// BFS runs breadth-first search over the product from (src, q₀) and
// returns dist (−1 for unreached) and parent pointers (product id and
// graph edge) — the witness-reconstruction hook behind Witness, shortest
// enumeration, and distance queries. Expansion follows Succ order, so the
// parent tree (and therefore which shortest witness is reconstructed) is
// deterministic.
func (k *Kernel) BFS(src int) (dist, parent, parentEdge []int) {
	n := k.NumProductStates()
	dist = make([]int, n)
	parent = make([]int, n)
	parentEdge = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	var queue []int
	for _, q := range k.starts {
		id := src*k.nq + q
		if dist[id] == 0 {
			continue
		}
		dist[id] = 0
		queue = append(queue, id)
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, st := range k.Succ(k.Unid(cur)) {
			ni := k.ID(st.To)
			if dist[ni] == -1 {
				dist[ni] = dist[cur] + 1
				parent[ni] = cur
				parentEdge[ni] = st.Edge
				queue = append(queue, ni)
			}
		}
	}
	return dist, parent, parentEdge
}

// containsLabel reports whether a positive guard's resolved label-ID list
// (tiny, ascending) contains id.
func containsLabel(ids []int, id int) bool {
	for _, l := range ids {
		if l == id {
			return true
		}
	}
	return false
}
