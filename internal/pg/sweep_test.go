package pg_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// sweepKernels compiles q forward and backward over g.
func sweepKernels(t testing.TB, g *graph.Graph, q string) (fwd, bwd *pg.Kernel) {
	t.Helper()
	expr, err := rpq.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	nfa := rpq.Compile(expr)
	return pg.NewKernel(g, pg.FromNFA(g, nfa), nil), pg.NewKernel(g, pg.FromNFABackward(g, nfa), nil)
}

// TestReachableSweepMatchesScalar is the frontier engine's oracle: every
// plan shape — frontier × {1, 2, 8} shards × indexed/dense scans, forward
// and backward automata — must produce byte-identical per-source results
// to the scalar queue loop, on graph families covering the regimes the
// direction switch distinguishes (dense cliques, sparse grids, scale-free
// hubs, random multigraphs).
func TestReachableSweepMatchesScalar(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random":    gen.Random(60, 300, []string{"a", "b"}, 5),
		"clique":    gen.Clique(12, "a"),
		"grid":      gen.Grid(7, 7, "a"),
		"scalefree": gen.ScaleFree(400, 3, 7),
	}
	queries := []string{"a*", "a b* a", "(!{b})*", "(a | b)+"}
	for gname, g := range graphs {
		for _, q := range queries {
			fwd, bwd := sweepKernels(t, g, q)
			for kname, kern := range map[string]*pg.Kernel{"fwd": fwd, "bwd": bwd} {
				for _, dense := range []bool{false, true} {
					sc := kern.NewScratch()
					want := make([][]int, g.NumNodes())
					for u := 0; u < g.NumNodes(); u++ {
						vs, err := kern.ReachableRows(u, sc, nil, dense)
						if err != nil {
							t.Fatal(err)
						}
						want[u] = append([]int(nil), vs...)
					}
					for _, shards := range []int{1, 2, 8} {
						pl := pg.Plan{Frontier: true, Dense: dense, Shards: shards}
						fsc := kern.NewScratch()
						for u := 0; u < g.NumNodes(); u++ {
							got, err := kern.ReachableSweep(u, fsc, nil, pl)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got, want[u]) {
								if len(got) != 0 || len(want[u]) != 0 {
									t.Fatalf("%s %s %s dense=%v shards=%d src=%d:\nfrontier %v\nscalar   %v",
										gname, q, kname, dense, shards, u, got, want[u])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestReachableSweepScalarFallback: a non-frontier plan through
// ReachableSweep is exactly ReachableRows.
func TestReachableSweepScalarFallback(t *testing.T) {
	g := gen.Clique(6, "a")
	kern, _ := sweepKernels(t, g, "a a*")
	sc := kern.NewScratch()
	got, err := kern.ReachableSweep(0, sc, nil, pg.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := kern.ReachableRows(0, kern.NewScratch(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scalar fallback: %v != %v", got, want)
	}
}

// TestFrontierPeakIsCrossShardSum pins the satellite fix: the peak
// frontier a sharded sweep reports is the cross-shard level sum — the
// logical frontier is one queue partitioned P ways — not the largest
// single shard's slice. From node 0 of a 4-clique under a*, level 1 holds
// exactly the three other nodes, so every shard count must report 3.
func TestFrontierPeakIsCrossShardSum(t *testing.T) {
	g := gen.Clique(4, "a")
	expr, err := rpq.Parse("a*")
	if err != nil {
		t.Fatal(err)
	}
	nfa := rpq.Compile(expr)
	for _, shards := range []int{1, 2, 4} {
		c := &pg.Counters{}
		kern := pg.NewKernel(g, pg.FromNFA(g, nfa), c)
		sc := kern.NewScratch()
		if _, err := kern.ReachableSweep(0, sc, nil, pg.Plan{Frontier: true, Shards: shards}); err != nil {
			t.Fatal(err)
		}
		if peak := c.Snapshot().FrontierPeak; peak != 3 {
			t.Fatalf("shards=%d: frontier peak %d, want 3 (cross-shard level sum)", shards, peak)
		}
	}
}

// TestFrontierShardCounters: sharded sweeps count one sharded-plan unit of
// P shard loops; unsharded frontier sweeps count none.
func TestFrontierShardCounters(t *testing.T) {
	g := gen.Clique(5, "a")
	expr, err := rpq.Parse("a*")
	if err != nil {
		t.Fatal(err)
	}
	nfa := rpq.Compile(expr)
	c := &pg.Counters{}
	kern := pg.NewKernel(g, pg.FromNFA(g, nfa), c)
	sc := kern.NewScratch()
	if _, err := kern.ReachableSweep(0, sc, nil, pg.Plan{Frontier: true, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().ShardSweeps; got != 0 {
		t.Fatalf("unsharded sweep recorded %d shard sweeps", got)
	}
	if _, err := kern.ReachableSweep(0, sc, nil, pg.Plan{Frontier: true, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().ShardSweeps; got != 3 {
		t.Fatalf("sharded sweep recorded %d shard sweeps, want 3", got)
	}
}

// TestFrontierBudgetsAndCancel: budgets and cooperative cancellation keep
// working mid-sweep on the frontier path, sharded or not.
func TestFrontierBudgetsAndCancel(t *testing.T) {
	g := gen.Clique(40, "a")
	kern, _ := sweepKernels(t, g, "a* a*")
	for _, shards := range []int{1, 4} {
		pl := pg.Plan{Frontier: true, Shards: shards}
		sc := kern.NewScratch()

		m := pg.NewMeter(context.Background(), pg.Budget{MaxStates: 10})
		if _, err := kern.ReachableSweep(0, sc, m, pl); !errors.Is(err, pg.ErrBudgetExceeded) {
			t.Fatalf("shards=%d states budget: got %v, want ErrBudgetExceeded", shards, err)
		}

		m = pg.NewMeter(context.Background(), pg.Budget{MaxRows: 5})
		if _, err := kern.ReachableSweep(0, sc, m, pl); !errors.Is(err, pg.ErrBudgetExceeded) {
			t.Fatalf("shards=%d rows budget: got %v, want ErrBudgetExceeded", shards, err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		m = pg.NewMeter(ctx, pg.Budget{})
		if _, err := kern.ReachableSweep(0, sc, m, pl); !errors.Is(err, pg.ErrCanceled) {
			t.Fatalf("shards=%d cancel: got %v, want ErrCanceled", shards, err)
		}

		// The scratch must be reusable after every error path.
		got, err := kern.ReachableSweep(0, sc, nil, pl)
		if err != nil {
			t.Fatal(err)
		}
		want, err := kern.ReachableRows(0, kern.NewScratch(), nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: scratch poisoned by error paths: %v != %v", shards, got, want)
		}
	}
}

// TestFrontierScratchSurvivesShardChange: one scratch driven at different
// shard counts rebuilds its shard set and stays correct.
func TestFrontierScratchSurvivesShardChange(t *testing.T) {
	g := gen.Random(50, 250, []string{"a", "b"}, 9)
	kern, _ := sweepKernels(t, g, "(a | b)*")
	sc := kern.NewScratch()
	want, err := kern.ReachableRows(3, kern.NewScratch(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	want = append([]int(nil), want...)
	for _, shards := range []int{1, 4, 2, 8, 1} {
		got, err := kern.ReachableSweep(3, sc, nil, pg.Plan{Frontier: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d after resize: %v != %v", shards, got, want)
		}
	}
}

// TestFrontierShardsExceedNodes: more shards than graph nodes must clamp,
// not break (every node still owned by exactly one shard).
func TestFrontierShardsExceedNodes(t *testing.T) {
	g := gen.APath(3, "a")
	kern, _ := sweepKernels(t, g, "a*")
	sc := kern.NewScratch()
	got, err := kern.ReachableSweep(0, sc, nil, pg.Plan{Frontier: true, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	want, err := kern.ReachableRows(0, kern.NewScratch(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clamped shards: %v != %v", got, want)
	}
}

// TestFrontierRowsBudgetExact: the frontier path charges rows at emission
// (per level), so a MaxRows budget trips with the meter reading exactly
// MaxRows+1 — the same exactness contract the scalar path keeps.
func TestFrontierRowsBudgetExact(t *testing.T) {
	g := gen.Clique(30, "a")
	kern, _ := sweepKernels(t, g, "a*")
	m := pg.NewMeter(context.Background(), pg.Budget{MaxRows: 7})
	sc := kern.NewScratch()
	_, err := kern.ReachableSweep(0, sc, m, pg.Plan{Frontier: true})
	if !errors.Is(err, pg.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if rows := m.Rows(); rows != 8 {
		t.Fatalf("meter read %d rows at trip, want exactly MaxRows+1 = 8", rows)
	}
}

func ExamplePlan_String() {
	fmt.Println(pg.Plan{Frontier: true, Shards: 4, Workers: 1, EstStates: 1e6})
	fmt.Println(pg.Plan{Dense: true, Workers: 2})
	// Output:
	// dir=forward scan=indexed sweep=frontier workers=1 shards=4 est=1000000
	// dir=forward scan=dense sweep=scalar workers=2 est=0
}
