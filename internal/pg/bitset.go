package pg

// bitset is a word-packed bit array with a touched-word list: the first set
// bit in a word records the word's index, so reset costs O(words written)
// instead of O(capacity). That property is what makes scratch reuse cheap
// for sweeps that visit a tiny corner of a huge product space — and it is
// why the frontier engine's visited and emitted sets are bitsets, not byte
// arrays: 64 states per cache line instead of one, cleared by replaying the
// touched list.
type bitset struct {
	words   []uint64
	touched []int32
}

// newBitset returns a bitset with capacity for n bits.
func newBitset(n int) bitset {
	return bitset{words: make([]uint64, (n+63)>>6)}
}

// testSet sets bit i and reports whether it was previously clear.
func (b *bitset) testSet(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	old := b.words[w]
	if old&m != 0 {
		return false
	}
	if old == 0 {
		b.touched = append(b.touched, int32(w))
	}
	b.words[w] = old | m
	return true
}

// test reports bit i.
func (b *bitset) test(i int) bool {
	return b.words[i>>6]&(uint64(1)<<uint(i&63)) != 0
}

// reset clears every touched word.
func (b *bitset) reset() {
	for _, w := range b.touched {
		b.words[w] = 0
	}
	b.touched = b.touched[:0]
}

// testBit reports bit i of a raw word slice — the probe the bottom-up sweep
// runs against a peer shard's frozen frontier bitmap.
func testBit(words []uint64, i int) bool {
	return words[i>>6]&(uint64(1)<<uint(i&63)) != 0
}
