package pg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism option to a worker count: values ≤ 0 mean
// one worker per available CPU.
func Workers(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach is the runtime's parallel per-source fan-out with deterministic
// merge: it runs fn(i, scratch) for every i in [0, n) and concatenates the
// per-index results in index order, so the output is byte-identical to the
// sequential loop regardless of worker count or scheduling.
//
// With workers ≤ 1 it degenerates to the plain sequential loop (no
// goroutines, one scratch). Otherwise indexes are over-partitioned into
// 4 chunks per worker so stragglers balance; workers claim chunks off an
// atomic cursor, each with its own scratch from newScratch (may be nil
// when S is unused). putScratch (may be nil) releases each worker's
// scratch when it exits — the hook pooled scratches return through, called
// on error paths too. The first error stops all workers at their next
// chunk claim and is returned; the pool is always joined before returning,
// so no goroutine outlives the call even on error. An empty total yields
// nil.
func ForEach[T, S any](n, workers int, newScratch func() S, putScratch func(S), fn func(i int, sc S) ([]T, error)) ([]T, error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var sc S
		if newScratch != nil {
			sc = newScratch()
			if putScratch != nil {
				defer putScratch(sc)
			}
		}
		var out []T
		for i := 0; i < n; i++ {
			part, err := fn(i, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	}
	chunks := workers * 4
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	results := make([][]T, chunks)
	errs := make([]error, chunks)
	var failed atomic.Bool
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc S
			if newScratch != nil {
				sc = newScratch()
				if putScratch != nil {
					defer putScratch(sc)
				}
			}
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks || failed.Load() {
					return
				}
				lo := c * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				var part []T
				for i := lo; i < hi; i++ {
					rows, err := fn(i, sc)
					if err != nil {
						errs[c] = err
						failed.Store(true)
						return
					}
					part = append(part, rows...)
				}
				results[c] = part
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, part := range results {
		total += len(part)
	}
	if total == 0 {
		return nil, nil // match the sequential path's nil for empty results
	}
	out := make([]T, 0, total)
	for _, part := range results {
		out = append(out, part...)
	}
	return out, nil
}

// emitWindowPerWorker bounds how many per-index results may exist finished
// but not yet emitted, per worker: the in-flight window of ForEachEmit.
// Workers that get this far ahead of the emit cursor park on a condition
// variable, so a slow emit (a streaming consumer applying backpressure)
// throttles evaluation instead of letting completed parts pile up.
const emitWindowPerWorker = 4

// ForEachEmit is ForEach's streaming sibling: fn runs for every i in [0, n)
// on a worker pool, but instead of accumulating every per-index result into
// one merged slice, each finished part is handed to emit in strict index
// order as soon as it (and all its predecessors) is ready. The emitted
// sequence is therefore byte-identical to ForEach's return value, while
// memory is bounded by the in-flight window (workers × emitWindowPerWorker
// parts) instead of the total result.
//
// emit is never called concurrently with itself, and its error (like fn's)
// stops all workers at their next index claim and is returned; the pool is
// always joined before returning. An emitted part must not be retained
// beyond the emit call if T aliases scratch state (it does not for the
// value types the runtime fans out). With workers ≤ 1 the call degenerates
// to the plain sequential loop: fn, emit, repeat.
func ForEachEmit[T, S any](n, workers int, newScratch func() S, putScratch func(S), fn func(i int, sc S) ([]T, error), emit func(part []T) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var sc S
		if newScratch != nil {
			sc = newScratch()
			if putScratch != nil {
				defer putScratch(sc)
			}
		}
		for i := 0; i < n; i++ {
			part, err := fn(i, sc)
			if err != nil {
				return err
			}
			if len(part) == 0 {
				continue
			}
			if err := emit(part); err != nil {
				return err
			}
		}
		return nil
	}

	window := workers * emitWindowPerWorker
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		next     int             // next index to claim
		emitted  int             // next index to emit
		done     = map[int][]T{} // finished parts awaiting their turn
		emitting bool            // one worker at a time drains the ready prefix
		failed   bool
		firstErr error
	)
	fail := func(err error) {
		if !failed {
			failed, firstErr = true, err
		}
		cond.Broadcast()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc S
			if newScratch != nil {
				sc = newScratch()
				if putScratch != nil {
					defer putScratch(sc)
				}
			}
			for {
				mu.Lock()
				// The window wait is the backpressure edge: claimed-but-
				// unemitted indexes are capped, so a blocked emit parks the
				// whole pool within one part each.
				for !failed && next-emitted >= window {
					cond.Wait()
				}
				if failed || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				part, err := fn(i, sc)

				mu.Lock()
				if failed {
					mu.Unlock()
					return
				}
				if err != nil {
					fail(err)
					mu.Unlock()
					return
				}
				done[i] = part
				// Whoever completes the emit cursor's index becomes the
				// emitter and drains every contiguously ready part, releasing
				// the lock around each emit call so other workers keep
				// computing (until the window stops them).
				if !emitting {
					for !failed {
						part, ready := done[emitted]
						if !ready {
							break
						}
						emitting = true
						delete(done, emitted)
						mu.Unlock()
						var emitErr error
						if len(part) > 0 {
							emitErr = emit(part)
						}
						mu.Lock()
						emitting = false
						if emitErr != nil {
							fail(emitErr)
							break
						}
						emitted++
						cond.Broadcast()
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}
