package pg_test

// Benchmarks for the frontier sweep engine on scale-free graphs in the
// dense-guard regime: (!{b})* matches ~15/16 of all edges, so every plan
// scans dense and the comparison isolates what the frontier engine buys —
// compiled per-label ok tables, bitset visited sets, and the
// direction-optimizing switch to bottom-up probing. The graph is built
// once per process and shared across sub-benchmarks; parameters match the
// gen catalog's scalefree-N entry (m=4, seed 42) so serving-layer numbers
// line up with these.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
)

var scaleFreeCache sync.Map // n -> *graph.Graph

func scaleFreeGraph(n int) *graph.Graph {
	if g, ok := scaleFreeCache.Load(n); ok {
		return g.(*graph.Graph)
	}
	g := gen.ScaleFree(n, 4, 42)
	scaleFreeCache.Store(n, g)
	return g
}

func BenchmarkKernelSweep(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		g := scaleFreeGraph(n)
		kern, _ := sweepKernels(b, g, "(!{b})*")
		// Fixed sources spanning the degree distribution: early nodes are
		// the preferential-attachment hubs, late nodes are the periphery.
		srcs := []int{0, 1, n / 2, n - 1}
		run := func(name string, pl pg.Plan, scalar bool, mt *pg.Meter) {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				sc := kern.NewScratch()
				want := -1
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					total := 0
					for _, u := range srcs {
						var (
							vs  []int
							err error
						)
						if scalar {
							vs, err = kern.ReachableRows(u, sc, mt, true)
						} else {
							vs, err = kern.ReachableSweep(u, sc, mt, pl)
						}
						if err != nil {
							b.Fatal(err)
						}
						total += len(vs)
					}
					if want == -1 {
						want = total
					} else if total != want {
						b.Fatalf("result drifted across iterations: %d != %d", total, want)
					}
				}
			})
		}
		run("scalar-dense", pg.Plan{}, true, nil)
		run("frontier", pg.Plan{Frontier: true, Dense: true}, false, nil)
		run("sharded-2", pg.Plan{Frontier: true, Dense: true, Shards: 2}, false, nil)
		run("sharded-8", pg.Plan{Frontier: true, Dense: true, Shards: 8}, false, nil)
		// The same sweeps with the EXPLAIN ANALYZE telemetry sink attached:
		// recording happens only at sweep exits and level barriers, so these
		// should sit within noise of their bare counterparts. The bare rows
		// above double as the pinned analyze-off guard (±5% across PRs).
		ss := &pg.SweepStats{}
		mt := pg.NewMeterAnalyze(context.Background(), pg.Budget{}, nil, ss)
		run("analyze-scalar-dense", pg.Plan{}, true, mt)
		run("analyze-frontier", pg.Plan{Frontier: true, Dense: true}, false, mt)
	}
}

// BenchmarkKernelSweepClique is the EXPERIMENTS.md clique-300 row: the
// all-pairs a* a* a* sweep whose scalar runtime motivated the serving
// layer's kill/timeout machinery. The clique converges in two frontier
// levels, so the direction-optimizing engine retires almost the whole
// product bottom-up.
func BenchmarkKernelSweepClique(b *testing.B) {
	const k = 300
	g := gen.Clique(k, "a")
	kern, _ := sweepKernels(b, g, "a* a* a*")
	run := func(name string, pl pg.Plan, scalar bool) {
		b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
			sc := kern.NewScratch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for u := 0; u < k; u++ {
					var err error
					if scalar {
						_, err = kern.ReachableRows(u, sc, nil, true)
					} else {
						_, err = kern.ReachableSweep(u, sc, nil, pl)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
	run("scalar-dense", pg.Plan{}, true)
	run("frontier", pg.Plan{Frontier: true, Dense: true}, false)
	run("sharded-2", pg.Plan{Frontier: true, Dense: true, Shards: 2}, false)
}
