package experiments

import (
	"fmt"
	"io"
	"time"

	"graphquery/internal/automata"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/rpq"
	"graphquery/internal/spanner"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "§6.2: product-construction RPQ evaluation scaling",
		Claim: "all-pairs evaluation scales with |G|·|A|; unambiguous automata count paths exactly",
		Run:   runE16,
	})
	register(Experiment{
		ID:    "E19",
		Title: "§6.3: path modes — shortest/all vs simple/trail",
		Claim: "simple/trail are NP-hard in general but feasible on practice-like graphs",
		Run:   runE19,
	})
	register(Experiment{
		ID:    "E20",
		Title: "§6.3: data filters force longer (even cyclic) shortest paths",
		Claim: "Mike→Rebecca with one cheap transfer: len 3; with two: len 4 via a cycle",
		Run:   runE20,
	})
	register(Experiment{
		ID:    "E22",
		Title: "§6.2: automata sizes over an RPQ workload",
		Claim: "unambiguous/deterministic automata need not exceed expression size in practice (cf. SPARQL-log study)",
		Run:   runE22,
	})
	register(Experiment{
		ID:    "E23",
		Title: "§6.4/7.1: k-shortest path enumeration",
		Claim: "per-answer delay stays flat as k grows (Eppstein's direction)",
		Run:   runE23,
	})
	register(Experiment{
		ID:    "E24",
		Title: "§6.3: document spanners — annotating positions",
		Claim: "all capture mappings enumerable; output can be quadratic in document length",
		Run:   runE24,
	})
}

func runE16(w io.Writer) error {
	expr := rpq.MustParse("a (a | b)* b")
	t := newTable("nodes", "edges", "all-pairs answers", "time")
	for _, n := range []int{50, 100, 200, 400} {
		g := gen.Random(n, 4*n, []string{"a", "b"}, 42)
		start := time.Now()
		pairs := eval.Pairs(g, expr)
		t.add(n, 4*n, len(pairs), time.Since(start).Round(time.Microsecond))
	}
	t.write(w)

	// Counting via unambiguous automata, validated on Figure 5.
	g := gen.Figure5(10)
	count := eval.CountMatchingPaths(g, rpq.MustParse("a*"), g.MustNode("s"), g.MustNode("t"), 10)
	fmt.Fprintf(w, "  Figure-5(10) path count via unambiguous product: %s (expected 1024)\n", count)
	return nil
}

func runE19(w io.Writer) error {
	expr := rpq.MustParse("(a | knows | follows)+")
	t := newTable("graph", "mode", "exists src→dst", "time")
	// Practice-like: preferential-attachment social graph. knows-edges
	// point from newer members to older ones, so late → early is the
	// reachable direction.
	social := gen.Social(300, 7)
	sSrc, sDst := social.NumNodes()-1, 0
	// Adversarial: dense bidirectional grid.
	grid := gen.Grid(5, 5, "a")
	gSrc, gDst := 0, grid.NumNodes()-1

	for _, mode := range []eval.Mode{eval.Shortest, eval.Trail, eval.Simple} {
		start := time.Now()
		ok := eval.ExistsMode(social, expr, sSrc, sDst, mode)
		t.add("social(300)", mode, ok, time.Since(start).Round(time.Microsecond))
	}
	for _, mode := range []eval.Mode{eval.Shortest, eval.Trail, eval.Simple} {
		start := time.Now()
		ok := eval.ExistsMode(grid, expr, gSrc, gDst, mode)
		t.add("grid(5×5)", mode, ok, time.Since(start).Round(time.Microsecond))
	}
	t.write(w)

	// Enumerating ALL simple paths on grids shows the exponential trend.
	tt := newTable("grid", "simple paths corner→corner", "time")
	for _, k := range []int{3, 4} {
		g := gen.Grid(k, k, "a")
		start := time.Now()
		paths, err := eval.Paths(g, rpq.MustParse("a+"), 0, g.NumNodes()-1, eval.Simple, eval.Options{})
		if err != nil {
			return err
		}
		tt.add(fmt.Sprintf("%d×%d", k, k), len(paths), time.Since(start).Round(time.Millisecond))
	}
	tt.write(w)
	return nil
}

func runE20(w io.Writer) error {
	g := gen.BankProperty()
	mike, rebecca := g.MustNode("a3"), g.MustNode("a5")
	queries := []struct {
		name string
		expr string
	}{
		{"unfiltered", "() {[Transfer]()}+"},
		{"≥1 transfer < 4.5M", "() {[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}*"},
		{"≥2 transfers < 4.5M", "() {[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}*"},
	}
	t := newTable("query", "shortest length", "path", "trail?")
	for _, q := range queries {
		res, err := dlrpq.EvalBetween(g, dlrpq.MustParse(q.expr), mike, rebecca, eval.Shortest, dlrpq.Options{})
		if err != nil {
			return err
		}
		if len(res) == 0 {
			t.add(q.name, "-", "no result", "-")
			continue
		}
		p := res[0].Path
		t.add(q.name, p.Len(), p.Format(g), p.IsTrail())
	}
	t.write(w)
	return nil
}

func runE22(w io.Writer) error {
	workload := []string{
		"a", "a*", "a | b", "(a b)*", "a (a | b)* b", "a{2,5}",
		"(a | b | c)+ d?", "!{a} _*", "(a* b*)*", "a? b? c?",
	}
	// Size is measured on the desugared expression (counted repetitions
	// expand, matching how the SPARQL-log study sizes expressions), and
	// the DFA is counted without its dead sink.
	t := newTable("expression", "size", "NFA states", "unambiguous", "min DFA states (live)", "DFA ≤ size+1")
	allWithin := true
	for _, q := range workload {
		e := rpq.MustParse(q)
		size := rpq.Size(rpq.Desugar(e))
		nfa := rpq.Compile(e)
		dfa := nfa.Determinize().Minimize()
		live := liveStates(dfa)
		within := live <= size+1
		if !within {
			allWithin = false
		}
		t.add(q, size, nfa.NumStates, nfa.IsUnambiguous(), live, within)
	}
	t.write(w)
	fmt.Fprintf(w, "  deterministic automaton within desugared size (+1) for all: %v\n", allWithin)
	return nil
}

func runE23(w io.Writer) error {
	g := gen.Random(200, 800, []string{"a"}, 11)
	t := newTable("k", "answers", "total time", "per-answer")
	for _, k := range []int{1, 10, 100, 500} {
		start := time.Now()
		walks := eval.KShortestWalks(g, rpq.MustParse("a+"), 0, 1, k)
		el := time.Since(start)
		per := time.Duration(0)
		if len(walks) > 0 {
			per = el / time.Duration(len(walks))
		}
		t.add(k, len(walks), el.Round(time.Microsecond), per.Round(time.Microsecond))
	}
	t.write(w)
	return nil
}

func runE24(w io.Writer) error {
	t := newTable("doc length", "captures of x{a .*}", "time")
	for _, n := range []int{16, 32, 64} {
		doc := ""
		for i := 0; i < n; i++ {
			if i%4 == 0 {
				doc += "a"
			} else {
				doc += "b"
			}
		}
		start := time.Now()
		ms := spanner.Extract(doc, spanner.Cap("x", spanner.Seq(spanner.Lit("a"), spanner.Star(spanner.Dot()))))
		t.add(n, len(ms), time.Since(start).Round(time.Microsecond))
	}
	t.write(w)
	fmt.Fprintln(w, "  (every a-start × every end position: the quadratically many mappings of §6.3)")
	return nil
}

// liveStates counts DFA states from which an accepting state is reachable
// (i.e. excluding the dead sink, which trim-based size comparisons omit).
func liveStates(d *automata.DFA) int {
	n := d.NumStates()
	rev := make([][]int, n)
	for q := 0; q < n; q++ {
		for _, to := range d.Next[q] {
			rev[to] = append(rev[to], q)
		}
	}
	live := make([]bool, n)
	var stack []int
	for q := 0; q < n; q++ {
		if d.Accept[q] {
			live[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	count := 0
	for _, l := range live {
		if l {
			count++
		}
	}
	return count
}
