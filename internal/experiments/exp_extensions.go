package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"graphquery/internal/cardest"
	"graphquery/internal/crpq"
	"graphquery/internal/gen"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/regular"
	"graphquery/internal/rpq"
	"graphquery/internal/twoway"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Title: "§4.2: deduplication depends on variable naming (GQL)",
		Claim: "query results can change when an anonymous element is given a name [35, §6]",
		Run:   runE25,
	})
	register(Experiment{
		ID:    "E26",
		Title: "Remark 9: two-way navigation (2RPQs)",
		Claim: "the one-way framework extends easily with inverse atoms",
		Run:   runE26,
	})
	register(Experiment{
		ID:    "E27",
		Title: "§7.1: cardinality estimation for RPQs",
		Claim: "an open direction — a statistics-based estimator and its q-errors",
		Run:   runE27,
	})
	register(Experiment{
		ID:    "E28",
		Title: "§3.1.3 / Example 15: nested CRPQs (regular queries)",
		Claim: "closures of query-defined virtual edges become expressible with nesting",
		Run:   runE28,
	})
	register(Experiment{
		ID:    "E29",
		Title: "§7.1: static analysis — RPQ containment",
		Claim: "containment is decidable for RPQs via automata inclusion",
		Run:   runE29,
	})
}

func runE25(w io.Writer) error {
	// Two parallel a-edges u→v. Projecting the match table onto its bound
	// variables: with the edge anonymous the table has ONE row (u, v); with
	// the edge named z it has TWO rows (u, v, e1), (u, v, e2).
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "u", "v", nil).
		MustBuild()
	countRows := func(p gql.Pattern) (int, error) {
		ms, err := gql.EvalPattern(g, p, gql.Options{})
		if err != nil {
			return 0, err
		}
		rows := map[string]struct{}{}
		for _, m := range ms {
			vars := make([]string, 0, len(m.B))
			for v := range m.B {
				vars = append(vars, v)
			}
			sort.Strings(vars)
			var b strings.Builder
			for _, v := range vars {
				b.WriteString(v + "=" + m.B[v].Format(g) + ";")
			}
			rows[b.String()] = struct{}{}
		}
		return len(rows), nil
	}
	anon, err := countRows(gql.Concat(gql.Node("x"), gql.AnonEdgeL("a"), gql.Node("y")))
	if err != nil {
		return err
	}
	named, err := countRows(gql.Concat(gql.Node("x"), gql.EdgeL("z", "a"), gql.Node("y")))
	if err != nil {
		return err
	}
	t := newTable("pattern", "distinct output rows")
	t.add("(x)-[:a]->(y)   (anonymous)", anon)
	t.add("(x)-[z:a]->(y)  (named)", named)
	t.write(w)
	fmt.Fprintln(w, "  (same graph, same structure — naming the edge changes the deduplicated result)")
	return nil
}

func runE26(w io.Writer) error {
	g := gen.BankEdgeLabeled()
	// Co-owned accounts: owner · ~owner.
	pairs := twoway.Pairs(g, twoway.MustParse("owner ~owner"))
	var coowned []string
	for _, pr := range pairs {
		a, b := g.Node(pr[0]).ID, g.Node(pr[1]).ID
		if a != b && strings.HasPrefix(string(a), "a") {
			coowned = append(coowned, fmt.Sprintf("(%s,%s)", a, b))
		}
	}
	t := newTable("2RPQ", "answers")
	t.add("owner ~owner (co-owned, excl. reflexive)", strings.Join(coowned, " "))
	seq, ok := twoway.Witness(g, twoway.MustParse("~owner Transfer+ owner"),
		g.MustNode("Mike"), g.MustNode("Megan"))
	var names []string
	for _, n := range seq {
		names = append(names, string(g.Node(n).ID))
	}
	t.add("witness Mike → Megan (~owner Transfer+ owner)", fmt.Sprintf("%v (found=%v)", names, ok))
	t.write(w)
	return nil
}

func runE27(w io.Writer) error {
	queries := []string{"a", "b", "a b", "a | b", "a a b", "a{2,3}", "a*", "(a b)+"}
	t := newTable("query", "actual |⟦R⟧|", "estimate", "q-error")
	for _, seed := range []int64{3} {
		g := gen.Random(80, 320, []string{"a", "b"}, seed)
		rows, err := cardest.Compare(g, queries)
		if err != nil {
			return err
		}
		for _, r := range rows {
			t.add(r.Query, r.Actual, fmt.Sprintf("%.1f", r.Estimate), fmt.Sprintf("%.2f", r.QError))
		}
	}
	t.write(w)
	fmt.Fprintln(w, "  (independence-assumption estimator; uniform random graphs are its best case)")
	return nil
}

func runE28(w io.Writer) error {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddNode("w", "", nil).AddNode("x", "", nil).
		AddEdge("e1", "Transfer", "u", "v", nil).
		AddEdge("e2", "Transfer", "v", "u", nil).
		AddEdge("e3", "Transfer", "v", "w", nil).
		AddEdge("e4", "Transfer", "w", "v", nil).
		AddEdge("e5", "Transfer", "w", "x", nil).
		MustBuild()
	flat, err := crpq.Eval(g, crpq.MustParse("q(x, y) :- Transfer(x, y), Transfer(y, x)"), crpq.Options{})
	if err != nil {
		return err
	}
	nested, err := regular.Eval(g, regular.MustParse(`
		Vedge(x, y) :- Transfer(x, y), Transfer(y, x)
		q(a, b) :- Vedge+(a, b)
	`), crpq.Options{})
	if err != nil {
		return err
	}
	t := newTable("query", "pairs", "(u,w) connected")
	t.add("flat q1 (Example 14)", len(flat.Rows), flat.Contains(g, "u, w"))
	t.add("nested (q1)*+ (Example 15)", len(nested.Rows), nested.Contains(g, "u, w"))
	t.write(w)
	fmt.Fprintln(w, "  (the flat CRPQ cannot close the virtual edges; the regular query can)")
	return nil
}

func runE29(w io.Writer) error {
	cases := [][2]string{
		{"(a a)*", "a*"},
		{"a*", "(a a)*"},
		{"a{2,4}", "a+"},
		{"(a b)+", "a (b a)* b"},
		{"!{a}", "_"},
		{"_", "!{a}"},
	}
	t := newTable("L(A) ⊆ L(B)?", "A", "B", "result")
	for _, c := range cases {
		res := rpq.Contained(rpq.MustParse(c[0]), rpq.MustParse(c[1]))
		t.add("", c[0], c[1], res)
	}
	t.write(w)
	return nil
}

func init() {
	register(Experiment{
		ID:    "E30",
		Title: "§7.1: worst-case-optimal joins for CRPQs",
		Claim: "pairwise join plans can blow up on cyclic conjunctions; an attribute-at-a-time plan avoids it",
		Run:   runE30,
	})
}

func runE30(w io.Writer) error {
	q := crpq.MustParse("q(x, y, z) :- a(x, y), a(y, z), a(z, x)")
	t := newTable("n nodes (8n edges)", "triangles", "pairwise join", "worst-case-optimal")
	for _, n := range []int{40, 80, 160} {
		g := gen.Random(n, 8*n, []string{"a"}, 21)
		startPW := timeNow()
		ref, err := crpq.Eval(g, q, crpq.Options{})
		if err != nil {
			return err
		}
		pwTime := timeSince(startPW)
		startW := timeNow()
		got, err := crpq.EvalWCOJ(g, q, crpq.Options{})
		if err != nil {
			return err
		}
		wTime := timeSince(startW)
		if ref.Format(g) != got.Format(g) {
			return fmt.Errorf("wcoj and pairwise disagree on n=%d", n)
		}
		t.add(n, len(ref.Rows), pwTime, wTime)
	}
	t.write(w)
	return nil
}
