package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20",
		"E21", "E22", "E23", "E24", "E25", "E26", "E27", "E28", "E29", "E30",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("E99"); ok {
		t.Error("unknown experiment should not resolve")
	}
	var buf bytes.Buffer
	if err := Run(&buf, "E99"); err == nil {
		t.Error("running unknown experiment should error")
	}
}

// TestEveryExperimentRuns executes each experiment and checks it produces
// output without errors. The heavyweight ones are exercised too — they are
// sized to finish in seconds.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, id); err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, "=== "+id) {
				t.Errorf("missing header:\n%s", out)
			}
			if len(out) < 80 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

// TestSpotChecks verifies a few headline numbers inside experiment output.
func TestSpotChecks(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "E01"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "36") {
		t.Errorf("E01 should report 36 pairs:\n%s", buf.String())
	}
	buf.Reset()
	if err := Run(&buf, "E20"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "path(a3, t6, a4, t9, a6, t10, a5)") {
		t.Errorf("E20 should report the paper's filtered shortest path:\n%s", out)
	}
	if !strings.Contains(out, "path(a3, t7, a5, t4, a1, t1, a3, t7, a5)") {
		t.Errorf("E20 should report the cyclic two-cheap path:\n%s", out)
	}
}
