package experiments

import (
	"fmt"
	"io"

	"graphquery/internal/crpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/rpq"
)

func init() {
	register(Experiment{
		ID:    "E01",
		Title: "Example 12: Transfer* on the Figure 2 graph",
		Claim: "returns the complete set {a1..a6}×{a1..a6} (36 pairs)",
		Run:   runE01,
	})
	register(Experiment{
		ID:    "E02",
		Title: "Example 13: CRPQs q1 and q2 on the Figure 2 graph",
		Claim: "q1 = {(a3,a2,a4),(a6,a3,a5)}; (a4,Rebecca,no) ∈ q2",
		Run:   runE02,
	})
	register(Experiment{
		ID:    "E03",
		Title: "Example 1: GQL iteration vs repeated variables",
		Claim: "(x)(()-[z:a]->()){2}(y) binds a 2-edge list; repeated-z variants match only self-loops",
		Run:   runE03,
	})
	register(Experiment{
		ID:    "E04",
		Title: "Example 2: node vs group variable role flip",
		Claim: "inside an iteration x joins (self-loop); under the star x collects a list",
		Run:   runE04,
	})
	register(Experiment{
		ID:    "E05",
		Title: "Example 16: ℓ-RPQ (Transfer^z)*·isBlocked",
		Claim: "returns the path bindings µ1..µ5 listed in the paper",
		Run:   runE05,
	})
	register(Experiment{
		ID:    "E06",
		Title: "Example 17: shortest grouped by endpoint pairs",
		Claim: "Jay→Rebecca selects list(t10); Mike→Megan selects list(t7,t4)",
		Run:   runE06,
	})
	register(Experiment{
		ID:    "E07",
		Title: "Example 21: increasing dates on nodes AND edges (dl-RPQs)",
		Claim: "both directions expressible; 3,4,1,2 rejected",
		Run:   runE07,
	})
}

func runE01(w io.Writer) error {
	g := gen.BankEdgeLabeled()
	pairs := eval.Pairs(g, rpq.MustParse("Transfer*"))
	accounts := map[int]bool{}
	for _, id := range []graph.NodeID{"a1", "a2", "a3", "a4", "a5", "a6"} {
		accounts[g.MustNode(id)] = true
	}
	n := 0
	for _, pr := range pairs {
		if accounts[pr[0]] && accounts[pr[1]] {
			n++
		}
	}
	t := newTable("measure", "value")
	t.add("account pairs in ⟦Transfer*⟧", n)
	t.add("expected", 36)
	t.write(w)
	return nil
}

func runE02(w io.Writer) error {
	g := gen.BankEdgeLabeled()
	q1, err := crpq.Parse("q(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), Transfer(x2, x3)")
	if err != nil {
		return err
	}
	r1, err := crpq.Eval(g, q1, crpq.Options{})
	if err != nil {
		return err
	}
	q2, err := crpq.Parse("q(x, x1, x2) :- owner(y, x1), isBlocked(y, x2), Transfer Transfer? (x, y)")
	if err != nil {
		return err
	}
	r2, err := crpq.Eval(g, q2, crpq.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  q1 rows:")
	fmt.Fprintln(w, indent(r1.Format(g), "    "))
	fmt.Fprintf(w, "  q2 contains (a4, Rebecca, no): %v  (of %d rows)\n",
		r2.Contains(g, "a4, Rebecca, no"), len(r2.Rows))
	return nil
}

func runE03(w io.Writer) error {
	g := gen.APath(2, "a")
	loop := gen.Cycle(1, "a")
	unit := gql.Concat(gql.AnonNode(), gql.EdgeL("z", "a"), gql.AnonNode())
	grouped := gql.Concat(gql.Node("x"), gql.Repeat(unit, 2, 2), gql.Node("y"))
	joined := gql.Concat(gql.Node("x"), unit, unit, gql.Node("y"))
	separate := gql.Concat(gql.Node("x"),
		gql.Concat(gql.AnonNode(), gql.EdgeL("z", "a"), gql.AnonNode()),
		gql.Concat(gql.AnonNode(), gql.EdgeL("z1", "a"), gql.AnonNode()),
		gql.Node("y"))

	count2 := func(gr *graph.Graph, p gql.Pattern) int {
		ms, err := gql.EvalPattern(gr, p, gql.Options{})
		if err != nil {
			return -1
		}
		n := 0
		for _, m := range ms {
			if m.Path.Len() == 2 {
				n++
			}
		}
		return n
	}
	t := newTable("pattern", "2-edge matches on a-path", "2-edge matches on self-loop")
	t.add("(x)(()-[z:a]->()){2}(y)", count2(g, grouped), count2(loop, grouped))
	t.add("(x)()-[z:a]->()()-[z:a]->()(y)", count2(g, joined), count2(loop, joined))
	t.add("(x)()-[z:a]->()()-[z1:a]->()(y)", count2(g, separate), count2(loop, separate))
	t.write(w)
	fmt.Fprintln(w, "  (the {2} form collects z = list of two edges; repeated z forces a join)")
	return nil
}

func runE04(w io.Writer) error {
	g := graphBuilderE04()
	unit := gql.Concat(gql.Node("x"), gql.AnonEdgeL("a"), gql.Node("x"), gql.AnonEdgeL("a"))
	ms, err := gql.EvalPattern(g, gql.Repeat(unit, 2, 2), gql.Options{})
	if err != nil {
		return err
	}
	t := newTable("match path", "x binding")
	for _, m := range ms {
		if m.Path.Len() == 4 {
			t.add(m.Path.Format(g), m.B["x"].Format(g))
		}
	}
	t.write(w)
	return nil
}

func runE05(w io.Writer) error {
	g := gen.BankEdgeLabeled()
	res, err := lrpq.Eval(g, lrpq.MustParse("(Transfer^z)* isBlocked"), lrpq.Options{MaxLen: 3})
	if err != nil {
		return err
	}
	t := newTable("path", "binding")
	for _, pb := range res {
		t.add(pb.Path.Format(g), pb.Binding.Format(g))
	}
	t.write(w)
	return nil
}

func runE06(w io.Writer) error {
	g := gen.BankEdgeLabeled()
	q, err := crpq.Parse("q(x1, x2, z) :- owner(y1, x1), owner(y2, x2), shortest (Transfer^z)+(y1, y2)")
	if err != nil {
		return err
	}
	res, err := crpq.Eval(g, q, crpq.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, indent(res.Format(g), "  "))
	fmt.Fprintf(w, "  per-pair shortest: Jay,Rebecca,list(t10) present: %v; Mike,Megan,list(t7, t4) present: %v\n",
		res.Contains(g, "Jay, Rebecca, list(t10)"), res.Contains(g, "Mike, Megan, list(t7, t4)"))

	// Ablation: global shortest drops the length-2 row.
	abl, err := crpq.Eval(g, q, crpq.Options{GlobalModes: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  ablation (global shortest): Mike,Megan row survives: %v (expected false)\n",
		abl.Contains(g, "Mike, Megan, list(t7, t4)"))
	return nil
}

func indent(s, pad string) string {
	lines := splitLines(s)
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return joinLines(lines)
}
