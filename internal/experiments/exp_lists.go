package experiments

import (
	"fmt"
	"io"
	"time"

	"graphquery/internal/coregql"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gpath"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
)

func init() {
	register(Experiment{
		ID:    "E08",
		Title: "Example 3 / Prop. 23: naive stride-2 edge pattern (GQL model)",
		Claim: "the naive pattern matches 3,4,1,2 end-to-end (false positive); dl-RPQ rejects it",
		Run:   runE08,
	})
	register(Experiment{
		ID:    "E09",
		Title: "§5.2: EXCEPT workaround vs direct dl-RPQ",
		Claim: "both are correct; the compositional match-all-then-subtract plan degrades with path count",
		Run:   runE09,
	})
	register(Experiment{
		ID:    "E10",
		Title: "§5.2: reduce — increasing edges works, subset sum explodes",
		Claim: "list processing makes NP-hard queries deceptively easy to write",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "§5.2: shortest-vs-condition order on the quadratic query",
		Claim: "condition-after-shortest checks a+b+c=0; shortest-after-condition finds a path whose length is a root",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "§5.2: ⟨∀π′⇒θ⟩ conditions on matched paths",
		Claim: "consecutive-edge increase is clean; the all-distinct variant is NP-hard in disguise",
		Run:   runE12,
	})
}

func runE08(w io.Writer) error {
	bad := gen.DateEdgePath("a", []int64{3, 4, 1, 2})
	naive := gql.Concat(
		gql.Node("x"),
		gql.Star(gql.Where(
			gql.Concat(gql.AnonNode(), gql.Edge("u"), gql.AnonNode(), gql.Edge("v"), gql.AnonNode()),
			coregql.Cmp("u", "k", graph.OpLt, "v", "k"))),
		gql.Node("y"))
	ms, err := gql.EvalPattern(bad, naive, gql.Options{MaxLen: 5})
	if err != nil {
		return err
	}
	naiveFull := 0
	for _, m := range ms {
		if m.Path.Len() == 4 {
			naiveFull++
		}
	}
	dl := dlrpq.MustParse("() [_^z][x := date] { () [_^z][date > x][x := date] }* ()")
	dlRes, err := dlrpq.EvalBetween(bad, dl, bad.MustNode("v0"), bad.MustNode("v4"),
		eval.All, dlrpq.Options{MaxLen: 4})
	if err != nil {
		return err
	}
	t := newTable("approach", "matches 3,4,1,2 end-to-end", "verdict")
	t.add("naive GQL stride-2 pattern", naiveFull, "false positive (paper's point)")
	t.add("symmetric dl-RPQ", len(dlRes), "correctly rejects")
	t.write(w)
	return nil
}

// walkPattern is (x) (()-->())* (y).
func walkPattern() gql.Pattern {
	return gql.Concat(gql.Node("x"),
		gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode())),
		gql.Node("y"))
}

// badPairPattern is the π″ of §5.2: some consecutive pair with u.k ≥ v.k.
func badPairPattern() gql.Pattern {
	return gql.Concat(gql.Node("x"),
		gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode())),
		gql.Where(gql.Concat(gql.AnonNode(), gql.Edge("u"), gql.AnonNode(), gql.Edge("v"), gql.AnonNode()),
			coregql.Cmp("u", "k", graph.OpGe, "v", "k")),
		gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode())),
		gql.Node("y"))
}

func runE09(w io.Writer) error {
	t := newTable("n (edges)", "increasing v0→vn paths", "EXCEPT time", "dl-RPQ time", "agree")
	for _, n := range []int{4, 8, 16, 32} {
		dates := make([]int64, n)
		for i := range dates {
			dates[i] = int64(i) // fully increasing: the v0→vn path qualifies
		}
		g := gen.DateEdgePath("a", dates)

		// The task: increasing-value paths between FIXED endpoints v0→vn.
		// The compositional EXCEPT plan must materialize both full path
		// sets and subtract before it can select the endpoints; the direct
		// dl-RPQ evaluation is anchored from the start.
		src, dst := g.MustNode("v0"), g.MustNode(graph.NodeID(fmt.Sprintf("v%d", n)))
		start := time.Now()
		all, err := gql.MatchPaths(g, walkPattern(), gql.Options{MaxLen: n})
		if err != nil {
			return err
		}
		bad, err := gql.MatchPaths(g, badPairPattern(), gql.Options{MaxLen: n})
		if err != nil {
			return err
		}
		var inc []gpath.Path
		for _, p := range gql.Except(all, bad) {
			if s, _ := p.Src(g); s != src {
				continue
			}
			if t, _ := p.Tgt(g); t != dst {
				continue
			}
			inc = append(inc, p)
		}
		exceptTime := time.Since(start)

		start = time.Now()
		dl := dlrpq.MustParse("() [_^z][x := k] { () [_^z][k > x][x := k] }* ()")
		res, err := dlrpq.EvalBetween(g, dl, src, dst, eval.All, dlrpq.Options{MaxLen: n})
		if err != nil {
			return err
		}
		directTime := time.Since(start)

		direct := map[string]bool{}
		for _, pb := range res {
			direct[pb.Path.Key()] = true
		}
		agree := len(inc) == len(direct)
		for _, p := range inc {
			if !direct[p.Key()] {
				agree = false
			}
		}
		t.add(n, len(inc), exceptTime.Round(time.Microsecond),
			directTime.Round(time.Microsecond), agree)
	}
	t.write(w)
	return nil
}

func runE10(w io.Writer) error {
	// Part 1: the reduce-based increasing filter is correct.
	up := gen.DateEdgePath("a", []int64{1, 2, 3, 4})
	paths, err := gql.MatchPaths(up, walkPattern(), gql.Options{MaxLen: 4})
	if err != nil {
		return err
	}
	inc := gql.FilterPaths(paths, func(p gpath.Path) bool {
		return gql.IncreasingProp(up, "k", gql.EdgesOf(p))
	})
	fmt.Fprintf(w, "  reduce-based increasing filter on 1,2,3,4: kept %d of %d paths\n", len(inc), len(paths))

	// Part 2: subset-sum timing growth.
	t := newTable("n weights", "paths enumerated", "target hit", "time")
	for _, n := range []int{8, 10, 12, 14} {
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(3*i + 1)
		}
		var target int64
		for i := 0; i < n; i += 2 {
			target += weights[i]
		}
		g := gen.SubsetSumChain(weights)
		start := time.Now()
		paths, err := gql.MatchPaths(g, walkPattern(), gql.Options{MaxLen: n})
		if err != nil {
			return err
		}
		hit := false
		count := 0
		for _, p := range paths {
			if p.Len() != n {
				continue
			}
			count++
			if v, _ := gql.SumProp(g, "k", gql.EdgesOf(p)).AsInt(); v == target {
				hit = true
			}
		}
		t.add(n, count, hit, time.Since(start).Round(time.Millisecond))
	}
	t.write(w)
	fmt.Fprintln(w, "  (2ⁿ full paths enumerated: the reduce=target query is NP-complete in data complexity)")
	return nil
}

func runE11(w io.Writer) error {
	g := graph.NewBuilder().
		AddNode("u", "l", graph.Props{
			"a": graph.Int(1), "b": graph.Int(-5), "c": graph.Int(6)}).
		AddEdge("loop", "t", "u", "u", graph.Props{"k": graph.Int(1)}).
		MustBuild()
	walk := gql.Concat(gql.NodeL("", "l"),
		gql.Repeat(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode()), 1, -1),
		gql.NodeL("x", "l"))
	paths, err := gql.MatchPaths(g, walk, gql.Options{MaxLen: 6})
	if err != nil {
		return err
	}
	cond := func(p gpath.Path) bool {
		s, _ := gql.SumProp(g, "k", gql.EdgesOf(p)).AsInt()
		return 1*s*s-5*s+6 == 0 // roots 2 and 3
	}
	after := gql.ShortestThenFilter(g, paths, cond)
	before := gql.FilterThenShortest(g, paths, cond)
	t := newTable("semantics", "results", "path length")
	lenOf := func(ps []gpath.Path) string {
		if len(ps) == 0 {
			return "-"
		}
		return fmt.Sprint(ps[0].Len())
	}
	t.add("condition after shortest", len(after), lenOf(after))
	t.add("shortest after condition", len(before), lenOf(before))
	t.write(w)
	fmt.Fprintln(w, "  (x²-5x+6 = 0 has roots 2, 3: the second semantics finds the length-2 loop)")
	return nil
}

func runE12(w io.Writer) error {
	inner := gql.Concat(gql.Edge("u"), gql.AnonNode(), gql.Edge("v"))
	theta := coregql.Cmp("u", "k", graph.OpLt, "v", "k")
	up := gen.DateEdgePath("a", []int64{1, 2, 3, 4})
	down := gen.DateEdgePath("a", []int64{3, 4, 1, 2})

	count := func(g *graph.Graph) (kept, total int, err error) {
		paths, err := gql.MatchPaths(g, walkPattern(), gql.Options{MaxLen: 4})
		if err != nil {
			return 0, 0, err
		}
		keptPaths, err := gql.FilterForAll(g, paths, inner, theta, gql.Options{})
		if err != nil {
			return 0, 0, err
		}
		return len(keptPaths), len(paths), nil
	}
	k1, t1, err := count(up)
	if err != nil {
		return err
	}
	k2, t2, err := count(down)
	if err != nil {
		return err
	}
	t := newTable("input", "paths", "satisfy ∀ consecutive-increase")
	t.add("1,2,3,4", t1, k1)
	t.add("3,4,1,2", t2, k2)
	t.write(w)

	// The all-distinct variant: timing on growing paths with distinct k's.
	tt := newTable("n (all-distinct ∀)", "paths checked", "time")
	for _, n := range []int{4, 6, 8} {
		dates := make([]int64, n+1)
		for i := range dates {
			dates[i] = int64(i)
		}
		g := gen.DateNodePath("a", dates)
		start := time.Now()
		paths, err := gql.MatchPaths(g, walkPattern(), gql.Options{MaxLen: n})
		if err != nil {
			return err
		}
		innerAll := gql.Concat(gql.Node("u"),
			gql.Repeat(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode()), 1, -1),
			gql.Node("v"))
		thetaAll := coregql.Cmp("u", "k", graph.OpNe, "v", "k")
		if _, err := gql.FilterForAll(g, paths, innerAll, thetaAll, gql.Options{MaxLen: n}); err != nil {
			return err
		}
		tt.add(n, len(paths), time.Since(start).Round(time.Microsecond))
	}
	tt.write(w)
	return nil
}
