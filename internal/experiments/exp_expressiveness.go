package experiments

import (
	"fmt"
	"io"
	"strings"

	"graphquery/internal/coregql"
	"graphquery/internal/cypherfrag"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/relalg"
	"graphquery/internal/rpq"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Proposition 22: (ℓℓ)* is not a Cypher pattern",
		Claim: "no fragment pattern matches a-paths of even length only",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Proposition 24: CoreGQL's one-directional information flow",
		Claim: "patterns are evaluated on G first, then algebra: reachability over an FO-transformed graph is out of reach",
		Run:   runE14,
	})
}

func runE13(w io.Writer) error {
	target := rpq.MustParse("(a a)*")
	res := cypherfrag.SearchEquivalent(target, []string{"a"}, 9)
	t := newTable("measure", "value")
	t.add("target RPQ", "(a a)*")
	t.add("fragment size bound", 9)
	t.add("language-distinct candidates explored", res.Candidates)
	if res.Found != nil {
		t.add("equivalent pattern found", res.Found.String())
	} else {
		t.add("equivalent pattern found", "none (consistent with Prop. 22)")
	}
	t.write(w)
	// Show a few witnesses.
	fmt.Fprintln(w, "  sample refutations (candidate ⇒ separating word):")
	n := 0
	for pat, word := range res.Witnesses {
		fmt.Fprintf(w, "    %-28s ⇒ %q\n", pat, strings.Join(word, ""))
		n++
		if n == 4 {
			break
		}
	}
	// Semantic demonstration: on a 5-edge path, (aa)* keeps only the
	// even-distance pairs; a* (the closest fragment expression) keeps all.
	g := gen.APath(5, "a")
	evenPairs := len(eval.Pairs(g, target))
	allPairs := len(eval.Pairs(g, rpq.MustParse("a*")))
	fmt.Fprintf(w, "  on a 5-edge path: |⟦(aa)*⟧| = %d vs |⟦a*⟧| = %d (parity matters)\n", evenPairs, allPairs)
	return nil
}

func runE14(w io.Writer) error {
	// Family: a directed path v0→…→vn. FO transformation T: complement the
	// edge relation (on distinct nodes). Reference query: is v0 connected
	// to v1 in T(G)? A language with nesting computes reach over T(G); the
	// CoreGQL pipeline can only run patterns on G and then apply algebra.
	fmt.Fprintln(w, "  reference: reachability evaluated on the complemented graph T(G);")
	fmt.Fprintln(w, "  CoreGQL proxy: relational algebra over pattern outputs computed on G")
	fmt.Fprintln(w, "  (one-step complement edges are FO-definable, but their transitive")
	fmt.Fprintln(w, "  closure cannot be formed after pattern matching).")
	t := newTable("n (path length)", "reach in T(G) v0→v1", "FO-definable 1-step proxy on G", "agrees")
	for _, n := range []int{2, 3, 5, 8} {
		g := gen.APath(n, "a")
		tg := complementGraph(g)
		ref := eval.Check(tg, rpq.MustParse("a+"), tg.MustNode("v0"), tg.MustNode("v1"))

		// Best effort inside CoreGQL: the 1-step complement is expressible
		// as σ over the node-pair product minus the edge relation — but its
		// closure is not. We materialize exactly that one step.
		oneStep, err := coreGQLComplementStep(g)
		if err != nil {
			return err
		}
		v0, _ := g.NodeIndex("v0")
		v1, _ := g.NodeIndex("v1")
		proxy := oneStep.Contains(relalg.NodeCell(v0), relalg.NodeCell(v1))
		t.add(n, ref, proxy, ref == proxy)
	}
	t.write(w)
	fmt.Fprintln(w, "  (v0→v1 needs ≥2 complement steps on a path: the one-step proxy diverges — nesting is what's missing)")
	return nil
}

// complementGraph returns the edge-complement of g on distinct nodes, with
// all edges labeled a.
func complementGraph(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNode(g.Node(i).ID, g.Node(i).Label, nil)
	}
	has := map[[2]int]bool{}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(e)
		has[[2]int{ed.Src, ed.Tgt}] = true
	}
	k := 0
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if u == v || has[[2]int{u, v}] {
				continue
			}
			b.AddEdge(graph.EdgeID(fmt.Sprintf("c%d", k)), "a", g.Node(u).ID, g.Node(v).ID, nil)
			k++
		}
	}
	return b.MustBuild()
}

// coreGQLComplementStep materializes the FO-definable one-step complement
// relation inside the CoreGQL pipeline: all node pairs minus the edge
// endpoints relation, minus the diagonal.
func coreGQLComplementStep(g *graph.Graph) (*relalg.Relation, error) {
	allU, err := coregql.Output(g, coregql.Node("u"), []string{"u"}, coregql.Options{})
	if err != nil {
		return nil, err
	}
	allV, err := coregql.Output(g, coregql.Node("v"), []string{"v"}, coregql.Options{})
	if err != nil {
		return nil, err
	}
	pairs, err := allU.Product(allV)
	if err != nil {
		return nil, err
	}
	edges, err := coregql.Output(g,
		coregql.Concat(coregql.Node("u"), coregql.AnonEdge(), coregql.Node("v")),
		[]string{"u", "v"}, coregql.Options{})
	if err != nil {
		return nil, err
	}
	nonEdges, err := pairs.Diff(edges)
	if err != nil {
		return nil, err
	}
	uc, _ := nonEdges.Col("u")
	vc, _ := nonEdges.Col("v")
	return nonEdges.Select(func(t []relalg.Cell) bool { return !t[uc].Equal(t[vc]) }), nil
}
