// Package experiments regenerates every table, figure, and quantitative
// claim of the paper's examples and evaluation discussion, as indexed in
// DESIGN.md and EXPERIMENTS.md. Each experiment prints a labeled table of
// "paper claim vs. measured" rows; cmd/experiments is the CLI front end.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is one reproducible unit.
type Experiment struct {
	ID    string
	Title string
	// Claim summarizes what the paper asserts.
	Claim string
	// Run prints the measured results.
	Run func(w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate ID " + e.ID)
	}
	registry[e.ID] = e
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes one experiment, printing a header and its results.
func Run(w io.Writer, id string) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
	fmt.Fprintf(w, "=== %s — %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "paper: %s\n", e.Claim)
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	fmt.Fprintln(w)
	return nil
}

// RunAll executes every experiment in ID order.
func RunAll(w io.Writer) error {
	for _, id := range IDs() {
		if err := Run(w, id); err != nil {
			return err
		}
	}
	return nil
}

// table is a tiny aligned-column printer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}
