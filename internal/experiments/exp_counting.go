package experiments

import (
	"fmt"
	"io"
	"time"

	"graphquery/internal/bag"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/pmr"
	"graphquery/internal/rpq"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "§6.1 Boom!: (((a*)*)*)* on k-cliques under bag semantics",
		Claim: "the 6-clique count exceeds the number of protons in the observable universe; set semantics returns k² pairs",
		Run:   runE15,
	})
	register(Experiment{
		ID:    "E17",
		Title: "Figure 5: 2ⁿ shortest paths vs Θ(n)-size PMR",
		Claim: "PMRs represent exponentially many (or infinitely many) paths in linear space",
		Run:   runE17,
	})
	register(Experiment{
		ID:    "E18",
		Title: "§6.3: (aa^z + a^z a)* on a 2n-edge path",
		Claim: "a list variable generates 2ⁿ bindings on a single matched path",
		Run:   runE18,
	})
	register(Experiment{
		ID:    "E21",
		Title: "§6.4: PMR for the unblocked Mike→Mike transfer cycles",
		Claim: "a 3-node PMR represents the infinite cycle language (t7·t4·t1)*",
		Run:   runE21,
	})
}

func runE15(w io.Writer) error {
	nested := rpq.MustParse("(((a*)*)*)*")
	t := newTable("k", "bag answers (total multiplicity)", "digits", "set answers", "set time")
	for k := 2; k <= 6; k++ {
		g := gen.Clique(k, "a")
		total := bag.TotalCount(g, nested)
		start := time.Now()
		setPairs := len(eval.Pairs(g, rpq.Simplify(nested)))
		setTime := time.Since(start)
		digits := len(total.String())
		rendered := total.String()
		if digits > 24 {
			rendered = rendered[:10] + "…e" + fmt.Sprint(digits-1)
		}
		t.add(k, rendered, digits, setPairs, setTime.Round(time.Microsecond))
	}
	t.write(w)
	fmt.Fprintln(w, "  (protons in the observable universe ≈ 10⁸⁰; compare the k=6 digit count)")
	return nil
}

func runE17(w io.Writer) error {
	t := newTable("n", "shortest paths (2ⁿ)", "PMR size (nodes+edges)", "PMR build", "full enumeration")
	for _, n := range []int{4, 8, 12, 16, 18} {
		g := gen.Figure5(n)
		s, tt := g.MustNode("s"), g.MustNode("t")
		start := time.Now()
		r := pmr.ShortestFromProduct(g, rpq.MustParse("a*"), s, tt)
		count, _ := r.Cardinality()
		buildTime := time.Since(start)

		start = time.Now()
		enumerated := len(r.Enumerate(1 << uint(n)))
		enumTime := time.Since(start)
		_ = enumerated
		t.add(n, count.String(), r.Size(), buildTime.Round(time.Microsecond), enumTime.Round(time.Microsecond))
	}
	t.write(w)
	return nil
}

func runE18(w io.Writer) error {
	e := lrpq.MustParse("(a a^z | a^z a)*")
	t := newTable("n", "path edges (2n)", "distinct bindings (2ⁿ)")
	for _, n := range []int{2, 4, 8, 12} {
		g := gen.APath(2*n, "a")
		pbs, err := lrpq.EvalBetween(g, lrpq.MustParse("(a a)*"),
			g.MustNode("v0"), g.MustNode(nodeID("v", 2*n)), eval.Shortest, lrpq.Options{})
		if err != nil {
			return err
		}
		bindings := lrpq.BindingsOnPath(g, e, pbs[0].Path)
		t.add(n, 2*n, len(bindings))
	}
	t.write(w)
	return nil
}

func runE21(w io.Writer) error {
	g := gen.BankProperty()
	a3, a5, a1 := g.MustNode("a3"), g.MustNode("a5"), g.MustNode("a1")
	r, err := pmr.New(g,
		[]int{a3, a5, a1},
		[]pmr.Edge{
			{Src: 0, Tgt: 1, GEdge: g.MustEdge("t7")},
			{Src: 1, Tgt: 2, GEdge: g.MustEdge("t4")},
			{Src: 2, Tgt: 0, GEdge: g.MustEdge("t1")},
		},
		[]int{0}, []int{0})
	if err != nil {
		return err
	}
	_, infinite := r.Cardinality()
	t := newTable("measure", "value")
	t.add("PMR size", r.Size())
	t.add("represented path set infinite", infinite)
	t.write(w)
	fmt.Fprintln(w, "  first cycles:")
	for _, p := range r.Enumerate(3) {
		fmt.Fprintf(w, "    %s\n", p.Format(g))
	}
	return nil
}

func nodeID(prefix string, i int) graph.NodeID {
	return graph.NodeID(fmt.Sprintf("%s%d", prefix, i))
}
