package experiments

import (
	"io"
	"strings"
	"time"

	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

func splitLines(s string) []string { return strings.Split(s, "\n") }
func joinLines(ls []string) string { return strings.Join(ls, "\n") }

// graphBuilderE04 builds the Example 2 demonstration graph: two nodes with
// a-self-loops connected by a-edges, plus a third node without a self-loop.
func graphBuilderE04() *graph.Graph {
	return graph.NewBuilder().
		AddNode("n1", "", nil).AddNode("n2", "", nil).AddNode("n3", "", nil).
		AddEdge("l1", "a", "n1", "n1", nil).
		AddEdge("l2", "a", "n2", "n2", nil).
		AddEdge("c12", "a", "n1", "n2", nil).
		AddEdge("c23", "a", "n2", "n3", nil).
		MustBuild()
}

func runE07(w io.Writer) error {
	nodeInc := dlrpq.MustParse("(_^z)(x := date) { [_](_^z)(date > x)(x := date) }*")
	edgeInc := dlrpq.MustParse("() [_^z][x := date] { () [_^z][date > x][x := date] }* ()")

	check := func(g *graph.Graph, e dlrpq.Expr, src, dst graph.NodeID) int {
		res, err := dlrpq.EvalBetween(g, e, g.MustNode(src), g.MustNode(dst),
			eval.All, dlrpq.Options{MaxLen: 8})
		if err != nil {
			return -1
		}
		return len(res)
	}
	upN := gen.DateNodePath("a", []int64{1, 2, 3, 4})
	downN := gen.DateNodePath("a", []int64{3, 4, 1, 2})
	upE := gen.DateEdgePath("a", []int64{1, 2, 3, 4})
	downE := gen.DateEdgePath("a", []int64{3, 4, 1, 2})

	t := newTable("dl-RPQ", "increasing input", "3,4,1,2 input")
	t.add("nodes: (_^z)(x:=date){[_](_^z)(date>x)(x:=date)}*",
		check(upN, nodeInc, "v0", "v3"), check(downN, nodeInc, "v0", "v3"))
	t.add("edges: ()[_^z][x:=date]{()[_^z][date>x][x:=date]}*()",
		check(upE, edgeInc, "v0", "v4"), check(downE, edgeInc, "v0", "v4"))
	t.write(w)
	return nil
}

// timeNow/timeSince isolate clock use for the experiment tables.
func timeNow() time.Time                   { return time.Now() }
func timeSince(t0 time.Time) time.Duration { return time.Since(t0).Round(time.Microsecond) }
