package automata

import (
	"sort"
	"strings"
)

// DFA is a complete deterministic automaton over the minterm alphabet
// Labels ∪ {other}, where "other" stands for any label not mentioned by the
// original automaton (the alphabet of graphs is infinite, Remark 11).
// Column i of Next is the transition on Labels[i]; the final column is the
// transition on the "other" class.
type DFA struct {
	Labels []string // sorted mentioned labels
	Start  int
	Accept []bool
	Next   [][]int // state × (len(Labels)+1)
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Next) }

// classIndex maps a concrete label to its minterm column.
func (d *DFA) classIndex(label string) int {
	i := sort.SearchStrings(d.Labels, label)
	if i < len(d.Labels) && d.Labels[i] == label {
		return i
	}
	return len(d.Labels)
}

// Step returns δ(q, label).
func (d *DFA) Step(q int, label string) int { return d.Next[q][d.classIndex(label)] }

// Accepts runs the DFA on word.
func (d *DFA) Accepts(word []string) bool {
	q := d.Start
	for _, sym := range word {
		q = d.Step(q, sym)
	}
	return d.Accept[q]
}

// Determinize builds a complete DFA for L(A) via the subset construction
// over A's mentioned labels plus the "other" class.
func (a *NFA) Determinize() *DFA {
	return a.DeterminizeOver(a.MentionedLabels())
}

// DeterminizeOver is Determinize with an explicitly enlarged label universe
// (the universe must contain every label mentioned by A). It is used when
// two automata must share a minterm alphabet, e.g. for equivalence testing.
func (a *NFA) DeterminizeOver(universe []string) *DFA {
	labels := append([]string(nil), universe...)
	sort.Strings(labels)
	labels = dedupSorted(labels)
	// A representative concrete label for the "other" class: fresh w.r.t.
	// both the universe and all co-finite guard exception sets.
	other := freshLabel(labels, a)

	cols := len(labels) + 1
	symbolOf := func(c int) string {
		if c < len(labels) {
			return labels[c]
		}
		return other
	}

	type setKey string
	key := func(set []int) setKey {
		var b strings.Builder
		for _, q := range set {
			b.WriteString(itoa(q))
			b.WriteByte(',')
		}
		return setKey(b.String())
	}

	startSet := []int{a.Start}
	index := map[setKey]int{key(startSet): 0}
	sets := [][]int{startSet}
	d := &DFA{Labels: labels, Start: 0}
	for i := 0; i < len(sets); i++ {
		set := sets[i]
		acc := false
		for _, q := range set {
			if a.Accept[q] {
				acc = true
				break
			}
		}
		d.Accept = append(d.Accept, acc)
		row := make([]int, cols)
		for c := 0; c < cols; c++ {
			sym := symbolOf(c)
			nextSet := map[int]struct{}{}
			for _, q := range set {
				for _, t := range a.Trans[q] {
					if t.Guard.Matches(sym) {
						nextSet[t.To] = struct{}{}
					}
				}
			}
			ns := make([]int, 0, len(nextSet))
			for q := range nextSet {
				ns = append(ns, q)
			}
			sort.Ints(ns)
			k := key(ns)
			j, ok := index[k]
			if !ok {
				j = len(sets)
				index[k] = j
				sets = append(sets, ns)
			}
			row[c] = j
		}
		d.Next = append(d.Next, row)
	}
	return d
}

// freshLabel returns a label outside universe and outside every co-finite
// guard exception set of a, so it genuinely represents "any other label".
func freshLabel(universe []string, a *NFA) string {
	used := map[string]struct{}{}
	for _, l := range universe {
		used[l] = struct{}{}
	}
	if a != nil {
		for _, ts := range a.Trans {
			for _, t := range ts {
				for _, l := range t.Guard.Labels {
					used[l] = struct{}{}
				}
			}
		}
	}
	cand := "⊥" // ⊥
	for {
		if _, clash := used[cand]; !clash {
			return cand
		}
		cand += "'"
	}
}

// Complement returns a DFA for the complement language (over the same
// minterm alphabet).
func (d *DFA) Complement() *DFA {
	out := &DFA{Labels: d.Labels, Start: d.Start, Next: d.Next}
	out.Accept = make([]bool, len(d.Accept))
	for i, a := range d.Accept {
		out.Accept[i] = !a
	}
	return out
}

// IsEmpty reports whether the DFA accepts no word.
func (d *DFA) IsEmpty() bool {
	seen := make([]bool, d.NumStates())
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[q] {
			return false
		}
		for _, to := range d.Next[q] {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return true
}

// ShortestAcceptedWord returns a minimum-length accepted word; the "other"
// class is rendered as a fresh concrete label. ok is false when L = ∅.
func (d *DFA) ShortestAcceptedWord() ([]string, bool) {
	other := freshLabel(d.Labels, nil)
	type crumb struct {
		prev int
		sym  string
	}
	from := make([]crumb, d.NumStates())
	seen := make([]bool, d.NumStates())
	queue := []int{d.Start}
	seen[d.Start] = true
	from[d.Start] = crumb{prev: -1}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if d.Accept[q] {
			var word []string
			for s := q; from[s].prev != -1; s = from[s].prev {
				word = append(word, from[s].sym)
			}
			for i, j := 0, len(word)-1; i < j; i, j = i+1, j-1 {
				word[i], word[j] = word[j], word[i]
			}
			return word, true
		}
		for c, to := range d.Next[q] {
			if !seen[to] {
				seen[to] = true
				sym := other
				if c < len(d.Labels) {
					sym = d.Labels[c]
				}
				from[to] = crumb{prev: q, sym: sym}
				queue = append(queue, to)
			}
		}
	}
	return nil, false
}

// Minimize returns the minimal DFA for L(d), using Hopcroft's partition
// refinement. Unreachable states are removed first.
func (d *DFA) Minimize() *DFA {
	// Restrict to reachable states.
	n := d.NumStates()
	cols := len(d.Labels) + 1
	reach := make([]bool, n)
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range d.Next[q] {
			if !reach[to] {
				reach[to] = true
				stack = append(stack, to)
			}
		}
	}
	states := []int{}
	pos := make([]int, n)
	for q := 0; q < n; q++ {
		if reach[q] {
			pos[q] = len(states)
			states = append(states, q)
		} else {
			pos[q] = -1
		}
	}
	m := len(states)

	// Inverse transition lists over reachable states.
	inv := make([][][]int, cols)
	for c := range inv {
		inv[c] = make([][]int, m)
	}
	for i, q := range states {
		for c := 0; c < cols; c++ {
			to := pos[d.Next[q][c]]
			inv[c][to] = append(inv[c][to], i)
		}
	}

	// Hopcroft.
	part := make([]int, m) // state -> block id
	var blocks [][]int
	var accBlock, rejBlock []int
	for i, q := range states {
		if d.Accept[q] {
			accBlock = append(accBlock, i)
		} else {
			rejBlock = append(rejBlock, i)
		}
	}
	addBlock := func(b []int) int {
		id := len(blocks)
		blocks = append(blocks, b)
		for _, s := range b {
			part[s] = id
		}
		return id
	}
	type work struct{ block, col int }
	var queue []work
	if len(accBlock) > 0 {
		id := addBlock(accBlock)
		for c := 0; c < cols; c++ {
			queue = append(queue, work{id, c})
		}
	}
	if len(rejBlock) > 0 {
		id := addBlock(rejBlock)
		for c := 0; c < cols; c++ {
			queue = append(queue, work{id, c})
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		splitter := blocks[w.block]
		// X = states with a c-transition into the splitter.
		hit := map[int]struct{}{}
		for _, s := range splitter {
			for _, p := range inv[w.col][s] {
				hit[p] = struct{}{}
			}
		}
		if len(hit) == 0 {
			continue
		}
		// Group hit states by their current block; split blocks that are
		// only partially hit.
		byBlock := map[int][]int{}
		for p := range hit {
			byBlock[part[p]] = append(byBlock[part[p]], p)
		}
		for b, hitIn := range byBlock {
			if len(hitIn) == len(blocks[b]) {
				continue // block entirely inside X: no split
			}
			inHit := map[int]struct{}{}
			for _, p := range hitIn {
				inHit[p] = struct{}{}
			}
			var stay []int
			for _, p := range blocks[b] {
				if _, ok := inHit[p]; !ok {
					stay = append(stay, p)
				}
			}
			blocks[b] = stay
			newID := addBlock(hitIn)
			for c := 0; c < cols; c++ {
				queue = append(queue, work{newID, c})
			}
		}
	}

	// Assemble the quotient DFA.
	out := &DFA{Labels: d.Labels, Start: part[pos[d.Start]]}
	out.Accept = make([]bool, len(blocks))
	out.Next = make([][]int, len(blocks))
	for b, members := range blocks {
		rep := states[members[0]]
		out.Accept[b] = d.Accept[rep]
		row := make([]int, cols)
		for c := 0; c < cols; c++ {
			row[c] = part[pos[d.Next[rep][c]]]
		}
		out.Next[b] = row
	}
	return out
}

// Equivalent reports whether two NFAs recognize the same language, by
// determinizing both over a shared minterm universe and checking that the
// symmetric difference is empty via a product walk.
func Equivalent(a, b *NFA) bool {
	universe := append(a.MentionedLabels(), b.MentionedLabels()...)
	da := a.DeterminizeOver(universe)
	db := b.DeterminizeOver(universe)
	cols := len(da.Labels) + 1
	type pair struct{ p, q int }
	seen := map[pair]struct{}{{da.Start, db.Start}: {}}
	stack := []pair{{da.Start, db.Start}}
	for len(stack) > 0 {
		pr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if da.Accept[pr.p] != db.Accept[pr.q] {
			return false
		}
		for c := 0; c < cols; c++ {
			np := pair{da.Next[pr.p][c], db.Next[pr.q][c]}
			if _, ok := seen[np]; !ok {
				seen[np] = struct{}{}
				stack = append(stack, np)
			}
		}
	}
	return true
}

// itoa is a tiny allocation-light integer renderer for subset keys.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// ToNFA converts the DFA back to an NFA with symbolic guards: column i
// becomes a transition guarded by Labels[i], and the "other" column becomes
// a co-finite guard !Labels. The result is deterministic, hence unambiguous.
func (d *DFA) ToNFA() *NFA {
	a := NewNFA(d.NumStates(), d.Start)
	for q := 0; q < d.NumStates(); q++ {
		if d.Accept[q] {
			a.SetAccept(q)
		}
		for c, to := range d.Next[q] {
			if c < len(d.Labels) {
				a.AddTransition(q, GuardLabel(d.Labels[c]), to)
			} else {
				a.AddTransition(q, GuardNotIn(d.Labels...), to)
			}
		}
	}
	return a
}

// Canonical returns a canonical string for the language of the DFA,
// obtained by minimizing and BFS-renumbering the result: two DFAs over the
// same label universe have equal Canonical strings iff their languages are
// equal. Used to deduplicate languages in bounded-exhaustive expressiveness
// searches (Proposition 22 experiments).
func (d *DFA) Canonical() string {
	m := d.Minimize()
	order := make([]int, 0, m.NumStates())
	pos := make([]int, m.NumStates())
	for i := range pos {
		pos[i] = -1
	}
	queue := []int{m.Start}
	pos[m.Start] = 0
	order = append(order, m.Start)
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, to := range m.Next[q] {
			if pos[to] == -1 {
				pos[to] = len(order)
				order = append(order, to)
				queue = append(queue, to)
			}
		}
	}
	var b strings.Builder
	b.WriteString(strings.Join(m.Labels, ","))
	b.WriteByte('#')
	for _, q := range order {
		if m.Accept[q] {
			b.WriteByte('*')
		}
		for _, to := range m.Next[q] {
			b.WriteString(itoa(pos[to]))
			b.WriteByte('.')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Contained reports whether L(A) ⊆ L(B) — the query-containment primitive
// of static analysis (Section 7.1): the product of A with the complement of
// B must accept nothing.
func Contained(a, b *NFA) bool {
	universe := append(a.MentionedLabels(), b.MentionedLabels()...)
	da := a.DeterminizeOver(universe)
	db := b.DeterminizeOver(universe)
	cols := len(da.Labels) + 1
	type pair struct{ p, q int }
	seen := map[pair]struct{}{{da.Start, db.Start}: {}}
	stack := []pair{{da.Start, db.Start}}
	for len(stack) > 0 {
		pr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if da.Accept[pr.p] && !db.Accept[pr.q] {
			return false // a word in L(A) \ L(B)
		}
		for c := 0; c < cols; c++ {
			np := pair{da.Next[pr.p][c], db.Next[pr.q][c]}
			if _, dup := seen[np]; !dup {
				seen[np] = struct{}{}
				stack = append(stack, np)
			}
		}
	}
	return true
}
