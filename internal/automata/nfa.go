// Package automata implements the finite-automata toolkit of Section 6.2 of
// the paper: ε-free NFAs over the (infinite) label alphabet with co-finite
// wildcard guards (Remark 11), the product construction, determinization,
// complement, minimization, emptiness, language equivalence, and the
// unambiguity test needed for counting matching paths.
//
// Because Labels is infinite, transitions carry symbolic guards: either a
// finite positive set of labels or a co-finite set !S ("every label not in
// S"). All constructions work over the finite set of labels mentioned by the
// automata involved, plus one sentinel class standing for "any other label" —
// the standard minterm technique for symbolic alphabets.
package automata

import (
	"fmt"
	"sort"
	"strings"
)

// Guard is a symbolic transition label: a finite set of labels (Negated
// false) or the complement of a finite set (Negated true, the paper's !S
// wildcard). The wildcard "_" that matches every label is !∅.
type Guard struct {
	Negated bool
	Labels  []string // sorted, distinct
}

// GuardLabel returns the guard matching exactly the single label a.
func GuardLabel(a string) Guard { return Guard{Labels: []string{a}} }

// GuardAny returns the wildcard guard !∅ matching every label.
func GuardAny() Guard { return Guard{Negated: true} }

// GuardNotIn returns the co-finite guard !S.
func GuardNotIn(labels ...string) Guard {
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	ls = dedupSorted(ls)
	return Guard{Negated: true, Labels: ls}
}

// GuardIn returns the guard matching any label in the finite set.
func GuardIn(labels ...string) Guard {
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	ls = dedupSorted(ls)
	return Guard{Labels: ls}
}

func dedupSorted(ls []string) []string {
	out := ls[:0]
	for i, l := range ls {
		if i == 0 || l != ls[i-1] {
			out = append(out, l)
		}
	}
	return out
}

// Matches reports whether the guard accepts label a.
func (g Guard) Matches(a string) bool {
	i := sort.SearchStrings(g.Labels, a)
	in := i < len(g.Labels) && g.Labels[i] == a
	return in != g.Negated
}

// String renders the guard.
func (g Guard) String() string {
	if g.Negated {
		if len(g.Labels) == 0 {
			return "_"
		}
		return "!{" + strings.Join(g.Labels, ",") + "}"
	}
	if len(g.Labels) == 1 {
		return g.Labels[0]
	}
	return "{" + strings.Join(g.Labels, ",") + "}"
}

// Transition is an NFA transition src --guard--> dst.
type Transition struct {
	Guard Guard
	To    int
}

// NFA is an ε-free nondeterministic finite automaton (Q, Σ, δ, q₀, F) with
// symbolic guards. States are 0..NumStates-1.
type NFA struct {
	NumStates int
	Start     int
	Accept    []bool
	Trans     [][]Transition // indexed by source state
}

// NewNFA allocates an NFA with n states, start state start, and no
// transitions or accepting states.
func NewNFA(n, start int) *NFA {
	return &NFA{
		NumStates: n,
		Start:     start,
		Accept:    make([]bool, n),
		Trans:     make([][]Transition, n),
	}
}

// AddTransition adds from --guard--> to.
func (a *NFA) AddTransition(from int, g Guard, to int) {
	a.Trans[from] = append(a.Trans[from], Transition{Guard: g, To: to})
}

// SetAccept marks state q accepting.
func (a *NFA) SetAccept(q int) { a.Accept[q] = true }

// NumTransitions returns the total transition count (automaton size measure).
func (a *NFA) NumTransitions() int {
	n := 0
	for _, ts := range a.Trans {
		n += len(ts)
	}
	return n
}

// MentionedLabels returns the sorted set of labels appearing in any guard.
func (a *NFA) MentionedLabels() []string {
	set := map[string]struct{}{}
	for _, ts := range a.Trans {
		for _, t := range ts {
			for _, l := range t.Guard.Labels {
				set[l] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Accepts runs the NFA on the word (sequence of labels) by subset
// simulation.
func (a *NFA) Accepts(word []string) bool {
	cur := map[int]struct{}{a.Start: {}}
	for _, sym := range word {
		next := map[int]struct{}{}
		for q := range cur {
			for _, t := range a.Trans[q] {
				if t.Guard.Matches(sym) {
					next[t.To] = struct{}{}
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for q := range cur {
		if a.Accept[q] {
			return true
		}
	}
	return false
}

// CountRuns returns the number of distinct accepting runs of the NFA on
// word; used to validate the unambiguity test.
func (a *NFA) CountRuns(word []string) int {
	runs := make([]int, a.NumStates)
	runs[a.Start] = 1
	for _, sym := range word {
		next := make([]int, a.NumStates)
		for q, c := range runs {
			if c == 0 {
				continue
			}
			for _, t := range a.Trans[q] {
				if t.Guard.Matches(sym) {
					next[t.To] += c
				}
			}
		}
		runs = next
	}
	total := 0
	for q, c := range runs {
		if a.Accept[q] {
			total += c
		}
	}
	return total
}

// IsEmpty reports whether L(A) = ∅ (no accepting state reachable).
func (a *NFA) IsEmpty() bool {
	seen := make([]bool, a.NumStates)
	stack := []int{a.Start}
	seen[a.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Accept[q] {
			return false
		}
		for _, t := range a.Trans[q] {
			if !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return true
}

// reachable returns the set of states reachable from Start.
func (a *NFA) reachable() []bool {
	seen := make([]bool, a.NumStates)
	stack := []int{a.Start}
	seen[a.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.Trans[q] {
			if !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return seen
}

// coReachable returns the set of states from which an accepting state is
// reachable.
func (a *NFA) coReachable() []bool {
	rev := make([][]int, a.NumStates)
	for q, ts := range a.Trans {
		for _, t := range ts {
			rev[t.To] = append(rev[t.To], q)
		}
	}
	seen := make([]bool, a.NumStates)
	var stack []int
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			seen[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Trim returns an equivalent NFA containing only useful states (reachable
// and co-reachable). If the language is empty, the result is a one-state
// automaton with no accepting states.
func (a *NFA) Trim() *NFA {
	reach, coreach := a.reachable(), a.coReachable()
	remap := make([]int, a.NumStates)
	n := 0
	for q := 0; q < a.NumStates; q++ {
		if reach[q] && coreach[q] {
			remap[q] = n
			n++
		} else {
			remap[q] = -1
		}
	}
	if n == 0 || remap[a.Start] == -1 {
		return NewNFA(1, 0)
	}
	out := NewNFA(n, remap[a.Start])
	for q := 0; q < a.NumStates; q++ {
		if remap[q] == -1 {
			continue
		}
		if a.Accept[q] {
			out.SetAccept(remap[q])
		}
		for _, t := range a.Trans[q] {
			if remap[t.To] != -1 {
				out.AddTransition(remap[q], t.Guard, remap[t.To])
			}
		}
	}
	return out
}

// Union returns an NFA for L(A) ∪ L(B) (ε-free construction: a fresh start
// state inherits the outgoing transitions of both starts).
func Union(a, b *NFA) *NFA {
	n := a.NumStates + b.NumStates
	out := NewNFA(n+1, n)
	offB := a.NumStates
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			out.SetAccept(q)
		}
		for _, t := range a.Trans[q] {
			out.AddTransition(q, t.Guard, t.To)
		}
	}
	for q := 0; q < b.NumStates; q++ {
		if b.Accept[q] {
			out.SetAccept(offB + q)
		}
		for _, t := range b.Trans[q] {
			out.AddTransition(offB+q, t.Guard, offB+t.To)
		}
	}
	for _, t := range a.Trans[a.Start] {
		out.AddTransition(n, t.Guard, t.To)
	}
	for _, t := range b.Trans[b.Start] {
		out.AddTransition(n, t.Guard, offB+t.To)
	}
	if a.Accept[a.Start] || b.Accept[b.Start] {
		out.SetAccept(n)
	}
	return out
}

// guardIntersect returns the intersection of two guards and whether it is
// non-empty (as a satisfiable symbolic class).
func guardIntersect(g, h Guard) (Guard, bool) {
	switch {
	case !g.Negated && !h.Negated:
		var both []string
		for _, l := range g.Labels {
			if h.Matches(l) {
				both = append(both, l)
			}
		}
		if len(both) == 0 {
			return Guard{}, false
		}
		return Guard{Labels: both}, true
	case !g.Negated && h.Negated:
		var kept []string
		for _, l := range g.Labels {
			if h.Matches(l) {
				kept = append(kept, l)
			}
		}
		if len(kept) == 0 {
			return Guard{}, false
		}
		return Guard{Labels: kept}, true
	case g.Negated && !h.Negated:
		return guardIntersect(h, g)
	default: // both negated: !S ∩ !T = !(S ∪ T), always non-empty (alphabet infinite)
		union := append(append([]string(nil), g.Labels...), h.Labels...)
		sort.Strings(union)
		return Guard{Negated: true, Labels: dedupSorted(union)}, true
	}
}

// Intersect returns the product automaton recognizing L(A) ∩ L(B).
func Intersect(a, b *NFA) *NFA {
	out := NewNFA(a.NumStates*b.NumStates, a.Start*b.NumStates+b.Start)
	id := func(p, q int) int { return p*b.NumStates + q }
	for p := 0; p < a.NumStates; p++ {
		for q := 0; q < b.NumStates; q++ {
			if a.Accept[p] && b.Accept[q] {
				out.SetAccept(id(p, q))
			}
			for _, t := range a.Trans[p] {
				for _, u := range b.Trans[q] {
					if g, ok := guardIntersect(t.Guard, u.Guard); ok {
						out.AddTransition(id(p, q), g, id(t.To, u.To))
					}
				}
			}
		}
	}
	return out
}

// IsUnambiguous reports whether the automaton has at most one accepting run
// per word. The test is the classical self-product criterion on the trimmed
// automaton: A is ambiguous iff the trimmed self-product contains a useful
// state pair (p, q) with p ≠ q.
func (a *NFA) IsUnambiguous() bool {
	t := a.Trim()
	prod := Intersect(t, t)
	reach, coreach := prod.reachable(), prod.coReachable()
	for p := 0; p < t.NumStates; p++ {
		for q := 0; q < t.NumStates; q++ {
			if p == q {
				continue
			}
			s := p*t.NumStates + q
			if reach[s] && coreach[s] {
				return false
			}
		}
	}
	return true
}

// ShortestAcceptedWord returns a minimum-length word in L(A), using BFS over
// the subset construction. Wildcard classes are rendered with a fresh label
// outside the mentioned set. ok is false when the language is empty.
func (a *NFA) ShortestAcceptedWord() ([]string, bool) {
	d := a.Determinize()
	return d.ShortestAcceptedWord()
}

// String renders the automaton for debugging.
func (a *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFA(states=%d, start=%d)\n", a.NumStates, a.Start)
	for q := 0; q < a.NumStates; q++ {
		marker := " "
		if a.Accept[q] {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s%d:", marker, q)
		for _, t := range a.Trans[q] {
			fmt.Fprintf(&b, " --%s-->%d", t.Guard, t.To)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BoundLength unrolls the automaton against a length counter: state (q, ℓ)
// means "in q with ℓ symbols of budget left", so the bounded automaton
// accepts exactly the words of a's language with length ≤ maxLen. Language
// tiers use this to reproduce an evaluator-side MaxLen bound bit for bit on
// the product-graph kernel.
func BoundLength(a *NFA, maxLen int) *NFA {
	width := maxLen + 1
	id := func(q, l int) int { return q*width + l }
	out := NewNFA(a.NumStates*width, id(a.Start, maxLen))
	for q := 0; q < a.NumStates; q++ {
		for l := 0; l < width; l++ {
			if a.Accept[q] {
				out.SetAccept(id(q, l))
			}
			if l == 0 {
				continue
			}
			for _, t := range a.Trans[q] {
				out.AddTransition(id(q, l), t.Guard, id(t.To, l-1))
			}
		}
	}
	return out
}
