package automata

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// evenA returns an NFA for (aa)*: strings of a's of even length.
func evenA() *NFA {
	a := NewNFA(2, 0)
	a.SetAccept(0)
	a.AddTransition(0, GuardLabel("a"), 1)
	a.AddTransition(1, GuardLabel("a"), 0)
	return a
}

// anyA returns an NFA for a*.
func anyA() *NFA {
	a := NewNFA(1, 0)
	a.SetAccept(0)
	a.AddTransition(0, GuardLabel("a"), 0)
	return a
}

// ambiguousA returns an ambiguous NFA for a+ (two interchangeable states).
func ambiguousA() *NFA {
	a := NewNFA(3, 0)
	a.AddTransition(0, GuardLabel("a"), 1)
	a.AddTransition(0, GuardLabel("a"), 2)
	a.AddTransition(1, GuardLabel("a"), 1)
	a.AddTransition(2, GuardLabel("a"), 2)
	a.SetAccept(1)
	a.SetAccept(2)
	return a
}

func rep(sym string, n int) []string {
	w := make([]string, n)
	for i := range w {
		w[i] = sym
	}
	return w
}

func TestGuardMatches(t *testing.T) {
	tests := []struct {
		g     Guard
		label string
		want  bool
	}{
		{GuardLabel("a"), "a", true},
		{GuardLabel("a"), "b", false},
		{GuardAny(), "anything", true},
		{GuardNotIn("a", "b"), "a", false},
		{GuardNotIn("a", "b"), "c", true},
		{GuardIn("a", "b"), "b", true},
		{GuardIn("a", "b"), "c", false},
	}
	for _, tc := range tests {
		if got := tc.g.Matches(tc.label); got != tc.want {
			t.Errorf("%v.Matches(%q) = %v, want %v", tc.g, tc.label, got, tc.want)
		}
	}
}

func TestGuardString(t *testing.T) {
	if GuardAny().String() != "_" {
		t.Errorf("wildcard string = %q", GuardAny().String())
	}
	if GuardNotIn("a").String() != "!{a}" {
		t.Errorf("!{a} string = %q", GuardNotIn("a").String())
	}
	if GuardLabel("a").String() != "a" {
		t.Errorf("label string = %q", GuardLabel("a").String())
	}
}

func TestNFAAccepts(t *testing.T) {
	e := evenA()
	for n := 0; n <= 8; n++ {
		want := n%2 == 0
		if got := e.Accepts(rep("a", n)); got != want {
			t.Errorf("evenA on a^%d = %v, want %v", n, got, want)
		}
	}
	if e.Accepts([]string{"b"}) {
		t.Error("evenA should reject b")
	}
}

func TestNFAWildcardAccepts(t *testing.T) {
	// _ · !{a} : any label followed by a non-a label.
	a := NewNFA(3, 0)
	a.AddTransition(0, GuardAny(), 1)
	a.AddTransition(1, GuardNotIn("a"), 2)
	a.SetAccept(2)
	if !a.Accepts([]string{"x", "b"}) {
		t.Error("should accept xb")
	}
	if a.Accepts([]string{"x", "a"}) {
		t.Error("should reject xa")
	}
	if a.Accepts([]string{"x"}) {
		t.Error("should reject length-1 words")
	}
}

func TestIsEmptyAndTrim(t *testing.T) {
	a := NewNFA(4, 0)
	a.AddTransition(0, GuardLabel("a"), 1)
	a.AddTransition(0, GuardLabel("a"), 2) // 2 is a dead end
	a.AddTransition(3, GuardLabel("a"), 1) // 3 is unreachable
	a.SetAccept(1)
	if a.IsEmpty() {
		t.Error("language is non-empty")
	}
	trimmed := a.Trim()
	if trimmed.NumStates != 2 {
		t.Errorf("Trim states = %d, want 2", trimmed.NumStates)
	}
	if !trimmed.Accepts([]string{"a"}) {
		t.Error("Trim changed the language")
	}

	empty := NewNFA(2, 0)
	empty.AddTransition(0, GuardLabel("a"), 1)
	if !empty.IsEmpty() {
		t.Error("no accepting states: language should be empty")
	}
	if got := empty.Trim(); got.NumStates != 1 || !got.IsEmpty() {
		t.Errorf("Trim of empty language: %d states", got.NumStates)
	}
}

func TestUnion(t *testing.T) {
	u := Union(evenA(), anyA()) // (aa)* ∪ a* = a*
	for n := 0; n <= 6; n++ {
		if !u.Accepts(rep("a", n)) {
			t.Errorf("union should accept a^%d", n)
		}
	}
	if u.Accepts([]string{"b"}) {
		t.Error("union should reject b")
	}
	if !Equivalent(u, anyA()) {
		t.Error("(aa)* ∪ a* should equal a*")
	}
}

func TestIntersect(t *testing.T) {
	// (aa)* ∩ a* = (aa)*
	i := Intersect(evenA(), anyA())
	if !Equivalent(i, evenA()) {
		t.Error("(aa)* ∩ a* should equal (aa)*")
	}
	// (aa)* ∩ (complement-ish) via wildcard guards:
	// b-only automaton ∩ a-only automaton accepts only ε.
	b := NewNFA(1, 0)
	b.SetAccept(0)
	b.AddTransition(0, GuardLabel("b"), 0)
	i2 := Intersect(anyA(), b)
	if !i2.Accepts(nil) {
		t.Error("ε should be in the intersection")
	}
	if i2.Accepts([]string{"a"}) || i2.Accepts([]string{"b"}) {
		t.Error("intersection of a* and b* should contain only ε")
	}
}

func TestIntersectWildcardGuards(t *testing.T) {
	// !{a} ∩ !{b} = !{a,b}; _ ∩ a = a; a ∩ !{a} = ∅.
	g1, ok := guardIntersect(GuardNotIn("a"), GuardNotIn("b"))
	if !ok || !g1.Negated || !reflect.DeepEqual(g1.Labels, []string{"a", "b"}) {
		t.Errorf("!{a} ∩ !{b} = %v, %v", g1, ok)
	}
	g2, ok := guardIntersect(GuardAny(), GuardLabel("a"))
	if !ok || g2.Negated || !reflect.DeepEqual(g2.Labels, []string{"a"}) {
		t.Errorf("_ ∩ a = %v, %v", g2, ok)
	}
	if _, ok := guardIntersect(GuardLabel("a"), GuardNotIn("a")); ok {
		t.Error("a ∩ !{a} should be empty")
	}
	if _, ok := guardIntersect(GuardLabel("a"), GuardLabel("b")); ok {
		t.Error("a ∩ b should be empty")
	}
}

func TestDeterminize(t *testing.T) {
	d := evenA().Determinize()
	for n := 0; n <= 8; n++ {
		want := n%2 == 0
		if got := d.Accepts(rep("a", n)); got != want {
			t.Errorf("DFA on a^%d = %v, want %v", n, got, want)
		}
	}
	if d.Accepts([]string{"b"}) {
		t.Error("DFA should reject b")
	}
}

func TestDeterminizeWildcard(t *testing.T) {
	// !{a}* : all words avoiding label a.
	n := NewNFA(1, 0)
	n.SetAccept(0)
	n.AddTransition(0, GuardNotIn("a"), 0)
	d := n.Determinize()
	if !d.Accepts([]string{"b", "c", "zzz"}) {
		t.Error("should accept any non-a word")
	}
	if d.Accepts([]string{"b", "a"}) {
		t.Error("should reject words containing a")
	}
}

func TestComplement(t *testing.T) {
	d := evenA().Determinize().Complement()
	for n := 0; n <= 8; n++ {
		want := n%2 == 1
		if got := d.Accepts(rep("a", n)); got != want {
			t.Errorf("complement on a^%d = %v, want %v", n, got, want)
		}
	}
	// b ∉ (aa)*, so b is in the complement.
	if !d.Accepts([]string{"b"}) {
		t.Error("complement should accept b")
	}
}

func TestMinimize(t *testing.T) {
	// Build a redundant DFA for (aa)* by determinizing the union of two
	// copies; the minimal DFA needs 3 states (even, odd, sink).
	u := Union(evenA(), evenA())
	d := u.Determinize().Minimize()
	if d.NumStates() != 3 {
		t.Errorf("minimal (aa)* DFA has %d states, want 3", d.NumStates())
	}
	for n := 0; n <= 8; n++ {
		want := n%2 == 0
		if got := d.Accepts(rep("a", n)); got != want {
			t.Errorf("minimized DFA on a^%d = %v, want %v", n, got, want)
		}
	}
}

func TestMinimizePreservesLanguageRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := []string{"a", "b"}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		a := NewNFA(n, 0)
		for q := 0; q < n; q++ {
			if rng.Intn(3) == 0 {
				a.SetAccept(q)
			}
			for _, l := range alphabet {
				for k := rng.Intn(3); k > 0; k-- {
					a.AddTransition(q, GuardLabel(l), rng.Intn(n))
				}
			}
		}
		d := a.Determinize()
		m := d.Minimize()
		// Compare on all words of length ≤ 6.
		var words [][]string
		var genWords func(prefix []string, depth int)
		genWords = func(prefix []string, depth int) {
			words = append(words, append([]string(nil), prefix...))
			if depth == 0 {
				return
			}
			for _, l := range alphabet {
				genWords(append(prefix, l), depth-1)
			}
		}
		genWords(nil, 6)
		for _, w := range words {
			if d.Accepts(w) != m.Accepts(w) {
				t.Fatalf("trial %d: minimize changed language on %v", trial, w)
			}
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("trial %d: minimize grew the DFA", trial)
		}
	}
}

func TestEquivalent(t *testing.T) {
	if Equivalent(evenA(), anyA()) {
		t.Error("(aa)* and a* are not equivalent")
	}
	if !Equivalent(anyA(), Union(anyA(), evenA())) {
		t.Error("a* = a* ∪ (aa)*")
	}
}

func TestIsUnambiguous(t *testing.T) {
	if !evenA().IsUnambiguous() {
		t.Error("(aa)* NFA is deterministic, hence unambiguous")
	}
	if ambiguousA().IsUnambiguous() {
		t.Error("two-branch a+ NFA is ambiguous")
	}
	// After trimming dead branches, ambiguity can disappear.
	a := NewNFA(3, 0)
	a.AddTransition(0, GuardLabel("a"), 1)
	a.AddTransition(0, GuardLabel("a"), 2) // 2 is a dead end
	a.SetAccept(1)
	if !a.IsUnambiguous() {
		t.Error("dead-end nondeterminism is not ambiguity")
	}
}

func TestCountRunsMatchesAmbiguity(t *testing.T) {
	amb := ambiguousA()
	if got := amb.CountRuns(rep("a", 3)); got != 2 {
		t.Errorf("ambiguous NFA runs on aaa = %d, want 2", got)
	}
	if got := evenA().CountRuns(rep("a", 4)); got != 1 {
		t.Errorf("unambiguous NFA runs on aaaa = %d, want 1", got)
	}
	if got := evenA().CountRuns(rep("a", 3)); got != 0 {
		t.Errorf("rejected word runs = %d, want 0", got)
	}
}

func TestShortestAcceptedWord(t *testing.T) {
	a := NewNFA(3, 0)
	a.AddTransition(0, GuardLabel("x"), 1)
	a.AddTransition(1, GuardLabel("y"), 2)
	a.SetAccept(2)
	w, ok := a.ShortestAcceptedWord()
	if !ok || !reflect.DeepEqual(w, []string{"x", "y"}) {
		t.Errorf("ShortestAcceptedWord = %v, %v", w, ok)
	}
	if w, ok := evenA().ShortestAcceptedWord(); !ok || len(w) != 0 {
		t.Errorf("ε expected, got %v, %v", w, ok)
	}
	empty := NewNFA(1, 0)
	if _, ok := empty.ShortestAcceptedWord(); ok {
		t.Error("empty language should have no witness")
	}
}

func TestShortestWitnessUsesWildcardClass(t *testing.T) {
	// Language !{a}: the shortest word must use some non-a label.
	n := NewNFA(2, 0)
	n.AddTransition(0, GuardNotIn("a"), 1)
	n.SetAccept(1)
	w, ok := n.ShortestAcceptedWord()
	if !ok || len(w) != 1 || w[0] == "a" {
		t.Errorf("witness = %v, %v; want one non-a label", w, ok)
	}
	if !n.Accepts(w) {
		t.Error("witness not accepted")
	}
}

func TestEquivalentWithWildcards(t *testing.T) {
	// !{a} + a  ≡  _ (every single label).
	lhs := NewNFA(2, 0)
	lhs.AddTransition(0, GuardNotIn("a"), 1)
	lhs.AddTransition(0, GuardLabel("a"), 1)
	lhs.SetAccept(1)
	rhs := NewNFA(2, 0)
	rhs.AddTransition(0, GuardAny(), 1)
	rhs.SetAccept(1)
	if !Equivalent(lhs, rhs) {
		t.Error("!{a} + a should equal _")
	}
	// And !{a} alone is not _.
	lhs2 := NewNFA(2, 0)
	lhs2.AddTransition(0, GuardNotIn("a"), 1)
	lhs2.SetAccept(1)
	if Equivalent(lhs2, rhs) {
		t.Error("!{a} should differ from _")
	}
}

func TestDeterminizationCorrectProperty(t *testing.T) {
	// Property: for random NFAs and random words, NFA and DFA agree.
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, wordPat []uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a := NewNFA(n, 0)
		alphabet := []string{"a", "b", "c"}
		for q := 0; q < n; q++ {
			if r.Intn(2) == 0 {
				a.SetAccept(q)
			}
			for k := r.Intn(4); k > 0; k-- {
				a.AddTransition(q, GuardLabel(alphabet[r.Intn(3)]), r.Intn(n))
			}
		}
		d := a.Determinize()
		if len(wordPat) > 8 {
			wordPat = wordPat[:8]
		}
		w := make([]string, len(wordPat))
		for i, c := range wordPat {
			w[i] = alphabet[int(c)%3]
		}
		return a.Accepts(w) == d.Accepts(w)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNFAString(t *testing.T) {
	s := evenA().String()
	if s == "" {
		t.Error("String should render something")
	}
}

func TestContained(t *testing.T) {
	// (aa)* ⊆ a* but not conversely.
	if !Contained(evenA(), anyA()) {
		t.Error("(aa)* ⊆ a* should hold")
	}
	if Contained(anyA(), evenA()) {
		t.Error("a* ⊈ (aa)*")
	}
	// Everything contains the empty language.
	empty := NewNFA(1, 0)
	if !Contained(empty, evenA()) {
		t.Error("∅ ⊆ L always")
	}
	if Contained(evenA(), empty) {
		t.Error("nonempty ⊄ ∅")
	}
	// Containment with wildcard guards across different mention sets.
	notA := NewNFA(2, 0)
	notA.AddTransition(0, GuardNotIn("a"), 1)
	notA.SetAccept(1)
	b := NewNFA(2, 0)
	b.AddTransition(0, GuardLabel("b"), 1)
	b.SetAccept(1)
	if !Contained(b, notA) {
		t.Error("{b} ⊆ !{a}")
	}
	if Contained(notA, b) {
		t.Error("!{a} ⊈ {b} (infinitely many other labels)")
	}
}

func TestContainedMutualIsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		mk := func() *NFA {
			n := 1 + rng.Intn(4)
			a := NewNFA(n, 0)
			for q := 0; q < n; q++ {
				if rng.Intn(2) == 0 {
					a.SetAccept(q)
				}
				for k := rng.Intn(3); k > 0; k-- {
					a.AddTransition(q, GuardLabel([]string{"a", "b"}[rng.Intn(2)]), rng.Intn(n))
				}
			}
			return a
		}
		x, y := mk(), mk()
		if (Contained(x, y) && Contained(y, x)) != Equivalent(x, y) {
			t.Fatalf("trial %d: mutual containment must equal equivalence", trial)
		}
	}
}

func TestCanonicalIdentifiesLanguages(t *testing.T) {
	// Two structurally different automata for a* share a canonical form.
	u := Union(anyA(), evenA()) // = a*
	if u.Determinize().Canonical() != anyA().Determinize().Canonical() {
		t.Error("equal languages must share Canonical()")
	}
	if evenA().Determinize().Canonical() == anyA().Determinize().Canonical() {
		t.Error("different languages must differ in Canonical()")
	}
}
