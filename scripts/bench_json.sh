#!/usr/bin/env bash
# Emit BENCH_kernel.json: a machine-readable snapshot of the kernel
# benchmarks (BenchmarkKernelScan, BenchmarkKernelSweep — including the
# 1M-node scale-free dense-guard cases — the root E15 suite, the unified
# upper-tier suite E16_UnifiedTiers, the live store's BenchmarkStoreMutate
# write path, and the HTTP delivery comparison E17_Streaming), so pre/post
# comparisons across PRs diff a file instead of scraping logs.
# BENCHTIME defaults to 1x: enough for the coarse regressions the file
# guards (the sweep cases run seconds per iteration); raise it for stable
# micro-numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
OUT="${1:-BENCH_kernel.json}"
BENCHTIME="${BENCHTIME:-1x}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

"$GO" test -run '^$' -bench 'BenchmarkKernel' -benchtime "$BENCHTIME" ./internal/pg/ | tee "$TMP"
"$GO" test -run '^$' -bench 'BenchmarkE15_UnifiedKernel' -benchtime "$BENCHTIME" . | tee -a "$TMP"
"$GO" test -run '^$' -bench 'BenchmarkE16_UnifiedTiers' -benchtime "$BENCHTIME" . | tee -a "$TMP"
"$GO" test -run '^$' -bench 'BenchmarkStoreMutate' -benchtime "$BENCHTIME" ./internal/store/ | tee -a "$TMP"
"$GO" test -run '^$' -bench 'BenchmarkE17_Streaming' -benchtime "$BENCHTIME" ./internal/server/ | tee -a "$TMP"

{
  echo '{'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$("$GO" version)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  echo '  "benchmarks": ['
  awk '/^Benchmark/ {
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", sep, $1, $2, $3
    sep = ",\n"
  } END { print "" }' "$TMP"
  echo '  ]'
  echo '}'
} > "$OUT"
echo "wrote $OUT"
