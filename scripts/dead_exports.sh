#!/usr/bin/env bash
# dead_exports.sh — flag exported package-level functions in internal/
# packages that no other file in the repository references. internal/
# packages have no external importers by construction, so an export nobody
# else uses is either dead code or should be unexported. Methods, types,
# and constants are out of scope: interface satisfaction and struct
# embedding make name-grep too imprecise for them.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
while IFS='|' read -r file lineno name; do
  [ -n "$name" ] || continue
  # A function is dead when its only occurrences are its declaration line
  # and comments: no call, reference, or shadowing use anywhere else.
  # (No grep -q here: its early exit SIGPIPEs the upstream grep, which
  # pipefail would then report as the pipeline's failure.)
  refs=$(grep -rnw --include='*.go' -- "$name" . |
    grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' |
    grep -v "^\./$file:$lineno:" || true)
  if [ -z "$refs" ]; then
    echo "dead export: $file: func $name"
    status=1
  fi
done < <(grep -rn --include='*.go' -E '^func [A-Z][A-Za-z0-9_]*\(' internal | grep -v _test.go |
  sed -E 's/^([^:]+):([0-9]+):func ([A-Z][A-Za-z0-9_]*)\(.*/\1|\2|\3/')
exit $status
