// Command streamprobe is the serve_smoke.sh client for the streamed
// /v1/query surface — the checks curl cannot express: reading a stream
// deliberately slowly while sampling the server's heap (backpressure must
// bound memory to O(chunk), not O(result)), comparing streamed NDJSON rows
// byte-for-byte against the buffered response, and killing a stream
// mid-flight to verify the in-band error trailer.
//
// Modes (-mode):
//
//	identity   buffered result fields == concatenated NDJSON rows, byte-exact
//	slowheap   drain a big stream slowly; fail if server HeapAlloc exceeds -max-heap
//	heapwatch  run a buffered query while sampling HeapAlloc; print the peak
//	killstream open a stream, read the header, cancel via the registry,
//	           require a "killed" error trailer
//
// Exit status 0 on success; diagnostics and the measured numbers go to
// stdout for the smoke log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

func main() {
	mode := flag.String("mode", "", "identity | slowheap | heapwatch | killstream")
	base := flag.String("base", "", "server base URL (http://host:port)")
	debug := flag.String("debug", "", "debug (pprof) base URL, for heap sampling")
	graph := flag.String("graph", "bank", "graph to query")
	query := flag.String("query", "Transfer*", "query text")
	maxHeap := flag.Int64("max-heap", 256<<20, "slowheap: fail if server HeapAlloc exceeds this")
	flag.Parse()
	var err error
	switch *mode {
	case "identity":
		err = identity(*base, *graph, *query)
	case "slowheap":
		err = slowheap(*base, *debug, *graph, *query, *maxHeap)
	case "heapwatch":
		err = heapwatch(*base, *debug, *graph, *query)
	case "killstream":
		err = killstream(*base, *graph, *query)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamprobe:", err)
		os.Exit(1)
	}
}

func post(base, body string, ndjson bool) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/query", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if ndjson {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	return http.DefaultClient.Do(req)
}

// readStream consumes one NDJSON response into (rows, trailer).
func readStream(resp *http.Response) ([]string, map[string]any, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, nil, fmt.Errorf("stream status %d: %s", resp.StatusCode, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows []string
	var trailer map[string]any
	first := true
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
		case first:
			first = false // header
		case strings.HasPrefix(line, `{"trailer"`):
			var tl map[string]map[string]any
			if err := json.Unmarshal([]byte(line), &tl); err != nil {
				return nil, nil, fmt.Errorf("bad trailer %q: %w", line, err)
			}
			trailer = tl["trailer"]
		default:
			rows = append(rows, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if trailer == nil {
		return nil, nil, fmt.Errorf("stream ended without a trailer (%d rows)", len(rows))
	}
	return rows, trailer, nil
}

// identity cross-validates delivery paths: the streamed rows must be
// byte-identical to the buffered response's result-array elements.
func identity(base, graph, query string) error {
	body := fmt.Sprintf(`{"graph":%q,"query":%q}`, graph, query)
	resp, err := post(base, body, false)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("buffered status %d: %s", resp.StatusCode, raw)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return err
	}
	var kind string
	if err := json.Unmarshal(m["kind"], &kind); err != nil {
		return err
	}
	field := map[string]string{
		"pairs": "pairs", "paths": "paths", "rows": "rows",
		"matches": "matches", "spans": "spans", "relation": "rows",
	}[kind]
	var want []json.RawMessage
	if f, ok := m[field]; ok {
		if err := json.Unmarshal(f, &want); err != nil {
			return err
		}
	}

	sresp, err := post(base, body, true)
	if err != nil {
		return err
	}
	rows, trailer, err := readStream(sresp)
	if err != nil {
		return err
	}
	if trailer["status"] != "ok" {
		return fmt.Errorf("trailer %v", trailer)
	}
	if len(rows) != len(want) {
		return fmt.Errorf("streamed %d rows, buffered %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i] != string(want[i]) {
			return fmt.Errorf("row %d differs:\nstream:   %s\nbuffered: %s", i, rows[i], want[i])
		}
	}
	fmt.Printf("streamprobe: identity ok (%s, %d rows byte-identical)\n", kind, len(rows))
	return nil
}

// heapSampler polls the debug listener's /debug/pprof/heap?debug=1 for the
// "# HeapAlloc = N" line and tracks the maximum until stopped.
func heapSampler(debug string) (max *atomic.Int64, stop func()) {
	max = new(atomic.Int64)
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		for {
			select {
			case <-done:
				return
			case <-time.After(30 * time.Millisecond):
			}
			resp, err := http.Get(debug + "/debug/pprof/heap?debug=1")
			if err != nil {
				continue
			}
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				line := sc.Text()
				if rest, ok := strings.CutPrefix(line, "# HeapAlloc = "); ok {
					if v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64); err == nil {
						for {
							cur := max.Load()
							if v <= cur || max.CompareAndSwap(cur, v) {
								break
							}
						}
					}
					break
				}
			}
			resp.Body.Close()
		}
	}()
	return max, func() { close(done); <-stopped }
}

// slowheap drains a large streamed result deliberately slowly (64 KiB
// then a pause, repeatedly) so evaluation runs far ahead of the client,
// and fails if the server's HeapAlloc ever exceeds maxHeap — the
// backpressure bound: memory O(chunk buffer), not O(result).
func slowheap(base, debug, graph, query string, maxHeap int64) error {
	// Force a GC first so garbage from earlier requests doesn't linger in
	// HeapAlloc and get misattributed to this stream.
	if resp, err := http.Get(debug + "/debug/pprof/heap?gc=1"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	max, stop := heapSampler(debug)
	body := fmt.Sprintf(`{"graph":%q,"query":%q}`, graph, query)
	resp, err := post(base, body, true)
	if err != nil {
		stop()
		return err
	}
	start := time.Now()
	var total int64
	buf := make([]byte, 64<<10)
	var tail []byte
	slowUntil := 40 // first ~2.5 MiB read slowly, then drain at full speed
	for {
		n, rerr := io.ReadFull(resp.Body, buf)
		total += int64(n)
		if n > 0 {
			// Keep only the last 64 KiB so the trailer line survives the
			// drain without buffering the whole stream client-side.
			tail = append(tail, buf[:n]...)
			if len(tail) > 64<<10 {
				tail = append(tail[:0], tail[len(tail)-64<<10:]...)
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			resp.Body.Close()
			stop()
			return rerr
		}
		if slowUntil > 0 {
			slowUntil--
			time.Sleep(50 * time.Millisecond)
		}
	}
	resp.Body.Close()
	stop()
	lines := strings.Split(strings.TrimSpace(string(tail)), "\n")
	last := lines[len(lines)-1]
	var tl map[string]map[string]any
	if err := json.Unmarshal([]byte(last), &tl); err != nil || tl["trailer"] == nil {
		return fmt.Errorf("stream did not end in a trailer: %q", last)
	}
	tr := tl["trailer"]
	if tr["status"] != "ok" {
		return fmt.Errorf("trailer %v", tr)
	}
	peak := max.Load()
	fmt.Printf("streamprobe: slowheap ok (%d MiB streamed in %.1fs, %v rows, server heap peak %d MiB)\n",
		total>>20, time.Since(start).Seconds(), tr["count"], peak>>20)
	if peak == 0 {
		return fmt.Errorf("heap sampler never saw a HeapAlloc line from %s", debug)
	}
	if peak > maxHeap {
		return fmt.Errorf("server HeapAlloc peaked at %d MiB, bound %d MiB: backpressure is not bounding memory",
			peak>>20, maxHeap>>20)
	}
	return nil
}

// heapwatch runs one buffered query while sampling HeapAlloc — the
// "before" column of the delivery-memory comparison. It only reports.
func heapwatch(base, debug, graph, query string) error {
	max, stop := heapSampler(debug)
	body := fmt.Sprintf(`{"graph":%q,"query":%q}`, graph, query)
	resp, err := post(base, body, false)
	if err != nil {
		stop()
		return err
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("buffered status %d", resp.StatusCode)
	}
	stop()
	fmt.Printf("streamprobe: heapwatch (%d MiB buffered body, server heap peak %d MiB)\n",
		n>>20, max.Load()>>20)
	return nil
}

// killstream opens a stream, reads just the header (so the 200 and first
// chunk are on the wire), kills the query through the registry, and
// requires the stream to end with a well-formed "killed" error trailer.
func killstream(base, graph, query string) error {
	body := fmt.Sprintf(`{"graph":%q,"query":%q}`, graph, query)
	resp, err := post(base, body, true)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Query-ID")
	if id == "" {
		return fmt.Errorf("no X-Query-ID header on the streamed response")
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	if _, err := br.ReadString('\n'); err != nil {
		return fmt.Errorf("reading stream header: %w", err)
	}
	cresp, err := http.Post(base+"/v1/queries/"+id+"/cancel", "application/json", nil)
	if err != nil {
		return err
	}
	craw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		return fmt.Errorf("cancel status %d: %s", cresp.StatusCode, craw)
	}
	var rows int
	var last string
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if sc.Text() != "" {
			last = sc.Text()
			rows++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var tl map[string]map[string]any
	if err := json.Unmarshal([]byte(last), &tl); err != nil || tl["trailer"] == nil {
		return fmt.Errorf("killed stream did not end in a trailer: %q", last)
	}
	tr := tl["trailer"]
	if tr["status"] != "error" || tr["code"] != "killed" {
		return fmt.Errorf("trailer %v, want killed", tr)
	}
	fmt.Printf("streamprobe: killstream ok (query %s, %d rows then killed trailer)\n", id, rows-1)
	return nil
}
