#!/usr/bin/env bash
# End-to-end smoke test of gqserverd: build with the race detector, start on
# a random port, exercise every endpoint and error class with curl, verify
# the observability surface (/metrics agrees with /v1/statz, the slow-query
# log emits one structured record per admitted query, pprof answers on the
# debug listener, no ERROR records), exercise the streamed NDJSON surface
# (byte-identity, mid-flight kill trailer, and a slow-reader backpressure
# measurement proving O(chunk) server memory on a >100 MiB result), then
# check graceful shutdown drains an in-flight query.
set -euo pipefail

GO=${GO:-go}
workdir=$(mktemp -d)
logfile="$workdir/gqserverd.log"
pid=""
bigpid=""

cleanup() {
  if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
    kill -9 "$pid" 2>/dev/null || true
  fi
  if [[ -n "$bigpid" ]] && kill -0 "$bigpid" 2>/dev/null; then
    kill -9 "$bigpid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$logfile" >&2 || true
  exit 1
}

echo "serve-smoke: building gqserverd (race detector on)"
$GO build -race -o "$workdir/gqserverd" ./cmd/gqserverd

# -slow-query 1ns makes every query an over-threshold query, so the log
# must carry exactly one structured record per admitted query; -query-log
# must carry one JSONL record per admitted query regardless of threshold.
# -shards 2 routes heavy sweeps onto the sharded frontier engine, so the
# kill/cancel flow below exercises cross-shard cancellation and the shard
# counters must surface in /metrics and /v1/statz.
# -query-log-max-bytes is set high enough that this run never rotates (the
# record-count check below relies on a single file) but the rotating-writer
# path is what every record goes through.
querylog="$workdir/query.jsonl"
"$workdir/gqserverd" -addr 127.0.0.1:0 -graphs bank,figure5-12,clique-40,clique-200,clique-300,grid-50x50 \
  -max-concurrent 4 -max-queue 4 -default-timeout 10s -parallelism 1 -shards 2 \
  -slow-query 1ns -query-log "$querylog" -query-log-max-bytes $((64 << 20)) -query-log-keep 2 \
  -debug-addr 127.0.0.1:0 -mutable \
  >"$logfile" 2>&1 &
pid=$!

# The daemon prints "listening on http://HOST:PORT" on stdout; scrape it.
base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#.*listening on \(http://[0-9.:]*\).*#\1#p' "$logfile" | head -1)
  [[ -n "$base" ]] && break
  kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
  sleep 0.1
done
[[ -n "$base" ]] || fail "daemon never reported its address"
echo "serve-smoke: daemon up at $base"

expect() { # expect <label> <want-substring> <actual>
  case "$3" in
    *"$2"*) echo "serve-smoke: ok: $1" ;;
    *) fail "$1: wanted substring '$2' in: $3" ;;
  esac
}

expect healthz '"status":"ok"' "$(curl -fsS "$base/v1/healthz")"
expect graphs '"name":"bank"' "$(curl -fsS "$base/v1/graphs")"
expect rpq-pairs '"kind":"pairs"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","query":"Transfer*"}')"
expect crpq-rows '"kind":"rows"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","query":"q(x,y) :- Transfer(x,y), Transfer(y,x)"}')"
expect paths '"kind":"paths"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"figure5-12","query":"a*","from":"s","to":"t","mode":"shortest"}')"
# One query per unified language tier (DESIGN.md §14): each explicit lang
# must answer with its own response kind.
expect twoway-pairs '"kind":"pairs"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","lang":"2rpq","query":"Transfer ~Transfer"}')"
expect cypher-pairs '"kind":"pairs"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","lang":"cypher","query":"-[:Transfer]->"}')"
expect gql-matches '"kind":"matches"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","lang":"gql","query":"(x)-[:Transfer]->(y)"}')"
expect coregql-matches '"kind":"matches"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","lang":"coregql","query":"(x)-->(y)"}')"
expect pmr-paths '"kind":"paths"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"figure5-12","lang":"pmr","query":"a*","from":"s","to":"t","limit":5}')"
expect spanner-spans '"kind":"spans"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","lang":"spanner","doc":"aabc","query":"x{a*}y{(b|c)*}"}')"
expect relalg-relation '"kind":"relation"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","lang":"relalg","query":"REACH(Transfer) AS (x, y)"}')"
expect bag-count '"kind":"bag"' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"bank","lang":"bag","query":"Transfer Transfer"}')"
# Taxonomy must not drift across tiers: parse errors are 400
# invalid_query in every lang (422 stays reserved for budget_exceeded),
# schema violations are invalid_query, and budgets trip as 422.
expect gql-parse-error '"code":"invalid_query"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"bank","lang":"gql","query":"(x)-[:"}')"
expect spanner-parse-error '"code":"invalid_query"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"bank","lang":"spanner","doc":"ab","query":"x{("}')"
expect relalg-parse-error '"code":"invalid_query"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"bank","lang":"relalg","query":"REACH(a"}')"
expect unknown-lang '"code":"invalid_query"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"bank","lang":"sparql","query":"a"}')"
expect pmr-no-limit '"code":"invalid_query"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"figure5-12","lang":"pmr","query":"a*","from":"s","to":"t"}')"
expect anchored-lang '"code":"invalid_query"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"bank","lang":"bag","query":"Transfer","from":"a0"}')"
expect bag-budget '"code":"budget_exceeded"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"clique-200","lang":"bag","query":"a*","max_states":100}')"
expect unknown-graph '"code":"unknown_graph"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"nope","query":"a"}')"
expect invalid-query '"code":"invalid_query"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"bank","query":"((("}')"
expect timeout '"code":"timeout"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"clique-300","query":"a* a* a*","timeout_ms":50}')"
expect row-budget '"code":"budget_exceeded"' \
  "$(curl -sS "$base/v1/query" -d '{"graph":"figure5-12","query":"a*","from":"s","to":"t","max_rows":5}')"
expect statz '"accepted"' "$(curl -fsS "$base/v1/statz")"

# /metrics and /v1/statz render from the same snapshot function; with no
# query in flight the two must agree exactly. Meta endpoints (statz,
# metrics, graphs, healthz) touch no counters, so fetch order is free.
metrics=$(curl -fsS "$base/metrics")
expect metrics-counter 'gq_completed_total' "$metrics"
expect metrics-plan-cache 'gq_plan_cache_hits_total{graph="bank"}' "$metrics"
expect metrics-histogram 'gq_query_duration_seconds_bucket' "$metrics"
statz=$(curl -fsS "$base/v1/statz")
for field in accepted completed timeouts budget_exceeded errors; do
  want=$(printf '%s' "$statz" | sed -n "s/.*\"$field\":\([0-9]*\).*/\1/p")
  got=$(printf '%s\n' "$metrics" | sed -n "s/^gq_${field}_total \([0-9]*\)\$/\1/p")
  [[ -n "$want" && "$got" == "$want" ]] \
    || fail "metrics/statz drift: gq_${field}_total=$got, statz $field=$want"
done
echo "serve-smoke: ok: metrics agrees with statz"

# Per-kind completion counters: one query of every response kind ran
# above, so each label of gq_queries_total must be nonzero and must match
# the statz "kinds" object.
for kind in pairs paths rows matches spans relation bag; do
  got=$(printf '%s\n' "$metrics" | sed -n "s/^gq_queries_total{kind=\"$kind\"} \([0-9]*\)\$/\1/p")
  want=$(printf '%s' "$statz" | sed -n "s/.*\"kinds\":{[^}]*\"$kind\":\([0-9]*\).*/\1/p")
  [[ -n "$got" && "$got" -gt 0 ]] \
    || fail "gq_queries_total{kind=\"$kind\"} = '$got' after serving a $kind query"
  [[ "$got" == "$want" ]] \
    || fail "per-kind drift: gq_queries_total{kind=\"$kind\"}=$got, statz kinds.$kind=$want"
done
echo "serve-smoke: ok: per-kind counters (pairs paths rows matches spans relation bag)"

# The slow-query log: one WARN record per admitted query so far (the
# un-admitted unknown-graph request must not appear), and no ERRORs ever.
accepted=$(printf '%s' "$statz" | sed -n 's/.*"accepted":\([0-9]*\).*/\1/p')
slow_count=$(grep -c 'msg="slow query"' "$logfile" || true)
[[ "$slow_count" == "$accepted" ]] \
  || fail "slow-query records ($slow_count) != admitted queries ($accepted)"
grep -q 'msg="slow query".*outcome=ok.*plan=' "$logfile" \
  || fail "slow-query records missing outcome/plan attributes"
echo "serve-smoke: ok: slow-query log ($slow_count records)"

# Live introspection: a long-running query must be visible in /v1/queries
# with nonzero swept states, killable through its cancel endpoint, and
# reported with the distinct "killed" outcome everywhere — the query's own
# reply, /v1/queries/recent, and the query event log. The grid's all-pairs
# a* plans onto the sharded frontier engine under -shards 2 (large product,
# long diameter), so the kill lands mid-sweep across shard goroutines.
kill_out="$workdir/killed.json"
kill_hdr="$workdir/killed.hdr"
curl -sS -D "$kill_hdr" "$base/v1/query" \
  -d '{"graph":"grid-50x50","query":"a*","timeout_ms":30000}' >"$kill_out" &
kill_curl=$!
qid=""
states=""
for _ in $(seq 1 100); do
  live=$(curl -fsS "$base/v1/queries")
  qid=$(printf '%s' "$live" | sed -n 's/.*"id":\([0-9]*\).*/\1/p' | head -1)
  states=$(printf '%s' "$live" | sed -n 's/.*"states":\([0-9]*\).*/\1/p' | head -1)
  [[ -n "$qid" && -n "$states" && "$states" -gt 0 ]] && break
  qid=""
  sleep 0.05
done
[[ -n "$qid" ]] || fail "slow query never appeared in /v1/queries with nonzero states"
echo "serve-smoke: ok: live query $qid visible ($states states swept)"
expect kill '"killed":true' "$(curl -sS -X POST "$base/v1/queries/$qid/cancel")"
wait "$kill_curl" || fail "killed query's connection was dropped"
expect killed-reply '"code":"killed"' "$(cat "$kill_out")"
grep -qi "^x-query-id: $qid" "$kill_hdr" \
  || fail "killed query's reply missing X-Query-ID $qid: $(cat "$kill_hdr")"
expect killed-recent '"outcome":"killed"' "$(curl -fsS "$base/v1/queries/recent")"
expect kill-unknown '"code":"unknown_query"' \
  "$(curl -sS -X POST "$base/v1/queries/999999/cancel")"
grep -q '"outcome":"killed"' "$querylog" \
  || fail "query event log has no killed record"

# The killed query ran on the sharded frontier engine, so the shard
# counters must be nonzero in /metrics and present in /v1/statz.
metrics=$(curl -fsS "$base/metrics")
expect metrics-plan-sharded 'gq_runtime_plan_sharded_total{graph="grid-50x50"}' "$metrics"
expect metrics-shard-sweeps 'gq_runtime_shard_sweeps_total{graph="grid-50x50"}' "$metrics"
sharded_total=$(printf '%s\n' "$metrics" \
  | sed -n 's/^gq_runtime_plan_sharded_total{graph="grid-50x50"} \([0-9]*\)$/\1/p')
sweeps_total=$(printf '%s\n' "$metrics" \
  | sed -n 's/^gq_runtime_shard_sweeps_total{graph="grid-50x50"} \([0-9]*\)$/\1/p')
[[ -n "$sharded_total" && "$sharded_total" -gt 0 ]] \
  || fail "killed sharded query left gq_runtime_plan_sharded_total at '$sharded_total'"
[[ -n "$sweeps_total" && "$sweeps_total" -gt 0 ]] \
  || fail "killed sharded query left gq_runtime_shard_sweeps_total at '$sweeps_total'"
expect statz-shard-sweeps '"shard_sweeps"' "$(curl -fsS "$base/v1/statz")"
echo "serve-smoke: ok: shard counters ($sharded_total sharded plans, $sweeps_total shard sweeps)"

# Kill a live gql query: the unified tiers ride the same in-flight
# registry and cooperative-kill plumbing as the RPQ family. The clique-40
# walk enumeration (star under max_len 3) runs for seconds under the race
# detector, so the kill lands mid-evaluation.
gkill_out="$workdir/gql_killed.json"
curl -sS "$base/v1/query" \
  -d '{"graph":"clique-40","lang":"gql","query":"(x)(()-[:a]->())*(y)","max_len":3,"timeout_ms":30000}' >"$gkill_out" &
gkill_curl=$!
gqid=""
for _ in $(seq 1 100); do
  live=$(curl -fsS "$base/v1/queries")
  gqid=$(printf '%s' "$live" | sed -n 's/.*"id":\([0-9]*\).*/\1/p' | head -1)
  [[ -n "$gqid" ]] && break
  sleep 0.05
done
[[ -n "$gqid" ]] || fail "gql query never appeared in /v1/queries"
expect gql-kill '"killed":true' "$(curl -sS -X POST "$base/v1/queries/$gqid/cancel")"
wait "$gkill_curl" || fail "killed gql query's connection was dropped"
expect gql-killed-reply '"code":"killed"' "$(cat "$gkill_out")"
echo "serve-smoke: ok: live gql query $gqid killed"

# The query event log carries exactly one JSONL record per admitted query.
accepted=$(curl -fsS "$base/v1/statz" | sed -n 's/.*"accepted":\([0-9]*\).*/\1/p')
qlog_count=$(wc -l <"$querylog")
[[ "$qlog_count" == "$accepted" ]] \
  || fail "query-log records ($qlog_count) != admitted queries ($accepted)"
echo "serve-smoke: ok: query event log ($qlog_count records)"

# Per-stage histograms: populated, and stage time never exceeds the
# whole-query wall clock it is a breakdown of.
metrics=$(curl -fsS "$base/metrics")
expect metrics-stage 'gq_stage_duration_seconds_count{stage="kernel"}' "$metrics"
stage_sum=$(printf '%s\n' "$metrics" \
  | sed -n 's/^gq_stage_duration_seconds_sum{[^}]*} \(.*\)$/\1/p' \
  | awk '{s+=$1} END {print s}')
total_sum=$(printf '%s\n' "$metrics" | sed -n 's/^gq_query_duration_seconds_sum \(.*\)$/\1/p')
awk -v s="$stage_sum" -v t="$total_sum" 'BEGIN {exit !(s <= t)}' \
  || fail "stage duration sum ($stage_sum) exceeds query duration sum ($total_sum)"
echo "serve-smoke: ok: stage histograms within wall clock ($stage_sum <= $total_sum)"

# EXPLAIN ANALYZE: "analyze": true returns the annotated plan tree (estimate
# vs actual with q-error) plus per-level sweep telemetry, feeds the q-error
# histogram and the per-graph cardinality feedback store, and /metrics
# exports the Go runtime health gauges.
analyze_out=$(curl -fsS "$base/v1/query" \
  -d '{"graph":"clique-40","query":"a a*","analyze":true}')
expect analyze-plan '"plan":{"name":"pairs"' "$analyze_out"
expect analyze-qerror '"q_error"' "$analyze_out"
expect analyze-sweep '"sweep"' "$analyze_out"
metrics=$(curl -fsS "$base/metrics")
expect metrics-qerror 'gq_cardest_qerror_count 1' "$metrics"
expect metrics-mispick 'gq_plan_mispick_total{graph="clique-40",knob="direction"}' "$metrics"
expect metrics-feedback 'gq_cardest_feedback_records_total{graph="clique-40"} 1' "$metrics"
expect metrics-go-goroutines 'gq_go_goroutines' "$metrics"
expect metrics-go-heap 'gq_go_heap_alloc_bytes' "$metrics"
expect metrics-go-gc 'gq_go_gc_pause_seconds_total' "$metrics"
expect statz-feedback '"feedback"' "$(curl -fsS "$base/v1/statz")"
grep -q '"analyze":{"plan"' "$querylog" \
  || fail "query event log record missing the annotated plan for the analyze query"
echo "serve-smoke: ok: EXPLAIN ANALYZE (plan tree, q-error, feedback, Go runtime gauges)"

# Live graph store: bulk-load a graph over the write surface and query it.
load_out=$(curl -sS "$base/v1/graphs" -d '{"name":"live","graph":{
  "nodes":[{"id":"n0"},{"id":"n1"},{"id":"n2"}],
  "edges":[{"id":"e0","label":"a","src":"n0","tgt":"n1"},
           {"id":"e1","label":"a","src":"n1","tgt":"n2"}]}}')
expect store-load '"version":1' "$load_out"
expect store-query-v1 '"count":1' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"live","query":"a.a"}')"

# Mutate while a heavy clique query is in flight: the write must land on a
# new version without disturbing the in-flight read (MVCC snapshots).
inflight_out="$workdir/inflight.json"
curl -sS "$base/v1/query" \
  -d '{"graph":"clique-200","query":"a* a*","timeout_ms":8000}' >"$inflight_out" &
inflight_pid=$!
sleep 0.1
expect store-mutate '"version":2' "$(curl -sS "$base/v1/graphs/live/mutate" \
  -d '{"if_version":1,"ops":[{"op":"add_edge","id":"e2","label":"a","src":"n2","tgt":"n0"}]}')"
wait "$inflight_pid" || fail "in-flight query dropped while a mutation committed"
expect store-inflight '"kind":"pairs"' "$(cat "$inflight_out")"
expect store-query-v2 '"count":3' \
  "$(curl -fsS "$base/v1/query" -d '{"graph":"live","query":"a.a"}')"
expect store-export '"e2"' "$(curl -fsS "$base/v1/graphs/live/export")"
expect store-read-only '"code":"read_only"' \
  "$(curl -sS "$base/v1/graphs/bank/mutate" -d '{"ops":[{"op":"add_node","id":"z"}]}')"
expect store-version-mismatch '"code":"version_mismatch"' \
  "$(curl -sS "$base/v1/graphs/live/mutate" -d '{"if_version":1,"ops":[{"op":"remove_edge","id":"e0"}]}')"

# The store counters in /metrics must match the /v1/statz store object
# exactly (both render from the same snapshot).
metrics=$(curl -fsS "$base/metrics")
statz=$(curl -fsS "$base/v1/statz")
for field in loads deletes mutation_batches mutation_ops; do
  want=$(printf '%s' "$statz" | sed -n "s/.*\"$field\":\([0-9]*\).*/\1/p")
  got=$(printf '%s\n' "$metrics" | sed -n "s/^gq_store_${field}_total \([0-9]*\)\$/\1/p")
  [[ -n "$want" && "$got" == "$want" ]] \
    || fail "store metrics/statz drift: gq_store_${field}_total=$got, statz $field=$want"
done
expect store-metrics-version 'gq_store_graph_version{graph="live"} 2' "$metrics"
echo "serve-smoke: ok: live store (load, mutate mid-flight, export, counters)"

# The pprof surface lives on its own listener, printed at startup.
dbgbase=$(sed -n 's#.*debug (pprof) on \(http://[0-9.:]*\)/debug/pprof/.*#\1#p' "$logfile" | head -1)
[[ -n "$dbgbase" ]] || fail "daemon never reported its debug (pprof) address"
expect pprof 'pprof' "$(curl -fsS "$dbgbase/debug/pprof/")"

# Streamed delivery (DESIGN.md §15). Plain curl first: an NDJSON response
# opens with a header line and closes with an ok trailer, and a filled
# cursor page hands back a resumable token.
nd=$(curl -fsSN -H 'Accept: application/x-ndjson' "$base/v1/query" \
  -d '{"graph":"bank","query":"Transfer*"}')
expect stream-header '"kind":"pairs"' "$(printf '%s\n' "$nd" | head -1)"
expect stream-trailer '"status":"ok"' "$(printf '%s\n' "$nd" | tail -1)"
page=$(curl -fsSN -H 'Accept: application/x-ndjson' "$base/v1/query" \
  -d '{"graph":"clique-40","query":"a","limit":5,"cursor":"start"}')
expect stream-cursor '"next_cursor":"v' "$(printf '%s\n' "$page" | tail -1)"

# The stream checks curl cannot express run through scripts/streamprobe:
# row-for-row byte-identity against the buffered response, and a stream
# killed mid-flight through the registry, which must still end in a
# well-formed in-band "killed" trailer (the 200 is already on the wire).
echo "serve-smoke: building streamprobe"
$GO build -o "$workdir/streamprobe" ./scripts/streamprobe
"$workdir/streamprobe" -mode identity -base "$base" -graph clique-200 -query 'a*' \
  || fail "streamed rows are not byte-identical to the buffered response"
"$workdir/streamprobe" -mode killstream -base "$base" -graph grid-50x50 -query 'a*' \
  || fail "mid-flight kill did not surface a killed trailer"
echo "serve-smoke: ok: streamed delivery (header/trailer, cursor, identity, kill)"

# Backpressure at scale: a slow reader drains a result whose buffered form
# is >100 MiB (path-4000 a* is ~8M pairs, 133 MiB of NDJSON) while the
# probe samples the server's HeapAlloc from the pprof listener — the peak
# must stay O(chunk buffer), far below the result size. The race-built
# binary is too slow to encode 8M rows in a smoke run, so this one
# measurement runs against a plain build of the same daemon. slowheap
# must run on the fresh daemon (a prior buffered run leaves a GiB of
# uncollected garbage inflating HeapAlloc); heapwatch afterwards reports
# the buffered peak for contrast — it is not asserted.
echo "serve-smoke: building gqserverd (plain, for the backpressure measurement)"
$GO build -o "$workdir/gqserverd-plain" ./cmd/gqserverd
biglog="$workdir/gqserverd-plain.log"
"$workdir/gqserverd-plain" -addr 127.0.0.1:0 -graphs path-4000 \
  -default-timeout 300s -parallelism 1 -debug-addr 127.0.0.1:0 \
  >"$biglog" 2>&1 &
bigpid=$!
bigbase=""
for _ in $(seq 1 100); do
  bigbase=$(sed -n 's#.*listening on \(http://[0-9.:]*\).*#\1#p' "$biglog" | head -1)
  [[ -n "$bigbase" ]] && break
  kill -0 "$bigpid" 2>/dev/null || fail "plain daemon exited during startup"
  sleep 0.1
done
[[ -n "$bigbase" ]] || fail "plain daemon never reported its address"
bigdbg=$(sed -n 's#.*debug (pprof) on \(http://[0-9.:]*\)/debug/pprof/.*#\1#p' "$biglog" | head -1)
[[ -n "$bigdbg" ]] || fail "plain daemon never reported its debug address"
"$workdir/streamprobe" -mode slowheap -base "$bigbase" -debug "$bigdbg" \
  -graph path-4000 -query 'a*' -max-heap $((256 << 20)) \
  || fail "backpressure did not bound server memory on a 133 MiB stream"
"$workdir/streamprobe" -mode heapwatch -base "$bigbase" -debug "$bigdbg" \
  -graph path-4000 -query 'a*' || fail "buffered heapwatch run failed"
kill "$bigpid" 2>/dev/null || true
wait "$bigpid" 2>/dev/null || true
bigpid=""
echo "serve-smoke: ok: backpressure bounds memory to O(chunk) on a >100 MiB stream"

# Graceful shutdown must drain in-flight queries: start a slow query, send
# SIGTERM while it runs, and require both a 200 for the query and a clean
# daemon exit.
slow_out="$workdir/slow.json"
curl -sS "$base/v1/query" \
  -d '{"graph":"clique-200","query":"a* a*","timeout_ms":8000}' >"$slow_out" &
curl_pid=$!
sleep 0.2
kill -TERM "$pid"
wait "$curl_pid" || fail "in-flight query connection was dropped during drain"
expect drain-result '"kind":"pairs"' "$(cat "$slow_out")"
wait "$pid" || fail "daemon exited non-zero after drain"
pid=""
if grep -q 'level=ERROR' "$logfile"; then
  fail "ERROR records in the server log"
fi
echo "serve-smoke: PASS"
